//! Incremental materialization of the Datalog fragment.
//!
//! §6 of the paper observes that the update-free core of TD *is* classical
//! Datalog, so classical optimization applies. The
//! [`SubgoalCache`](crate::cache::SubgoalCache) already
//! reuses answers, but any database-digest change invalidates it wholesale:
//! one `ins` re-derives every derived relation from scratch. This module
//! turns "digest changed → recompute" into "delta applied → O(|Δ|)
//! maintenance":
//!
//! * [`Materializer::compile`] classifies the Datalog-evaluable derived
//!   predicates (reusing `datalog::flatten_rule`), partitions their
//!   dependency graph into strongly-connected components, and fixes a
//!   topological evaluation order over the SCCs.
//! * For each database version (keyed by its O(1) content digest), a
//!   *materialized state* maps every such predicate to a
//!   [`CountedRelation`]: tuple → number of supporting rule instantiations.
//! * [`Materializer::apply_ops`] pushes a committed base delta through the
//!   circuit: per delta-rule semi-naive joins (one per affected body
//!   position, prefix-new/suffix-old, index-backed via the sorted treap
//!   probes) adjust the counts, and only 0 ↔ positive transitions cascade
//!   to downstream components. Non-recursive components use exact counting;
//!   recursive components use delete-rederive (DRed) over set semantics,
//!   where counting is unsound.
//! * [`Materializer::holds`] answers a ground derived-predicate call with
//!   an indexed probe of the materialized relation — the kernel substitutes
//!   it for rule unfolding when `EngineConfig::materialize` is on.
//!
//! Negation folds in directly: TD restricts `not` to base relations, so no
//! stratification is needed — a base tuple appearing is a *negative* delta
//! through a `not` literal and vice versa.
//!
//! Backtracking and isolation rollback need no explicit unwind: states are
//! keyed by content digest, so restoring an earlier database re-keys to the
//! retained state for that digest (the delta-log inverse is subsumed by
//! digest keying — see `docs/INCREMENTAL.md`).

use crate::datalog::{flatten_rule, FlatRule, Lit};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use td_core::goal::Builtin;
use td_core::unify::unify_terms;
use td_core::{Atom, Bindings, Pred, Program, Term, Value};
use td_db::{CountedRelation, Database, DeltaOp, Transition, Tuple};

/// Why a program has no materializable fragment.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NotMaterializable {
    pub reason: String,
}

impl std::fmt::Display for NotMaterializable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "nothing to materialize: {}", self.reason)
    }
}

impl std::error::Error for NotMaterializable {}

/// One component of the circuit: a strongly-connected set of derived
/// predicates plus every rule defining them, evaluated together.
struct SccPlan {
    preds: Vec<Pred>,
    /// Mutual or self recursion: maintained by DRed over set semantics
    /// instead of exact counting.
    recursive: bool,
    rules: Vec<FlatRule>,
    /// Every predicate (base or derived) read by this component's rules —
    /// a component is skipped when no delta touches its inputs.
    deps: HashSet<Pred>,
}

/// Materialized state for one database version: predicate → counted
/// relation.
type MatState = HashMap<Pred, CountedRelation>;

/// Membership events produced while one base delta cascades: per predicate,
/// `(tuple, +1)` for appeared and `(tuple, -1)` for disappeared.
type Events = HashMap<Pred, Vec<(Tuple, i64)>>;

#[derive(Default)]
struct Store {
    map: HashMap<u128, Arc<MatState>>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<u128>,
}

/// Bound on retained per-digest states; old versions evict FIFO (a probe on
/// an evicted version falls back to a full rebuild).
const MAX_STATES: usize = 4096;

/// The compiled delta circuit plus its per-digest state store. Cheap to
/// share across backends and worker threads behind an `Arc`; all counters
/// are process-wide lifetime totals.
pub struct Materializer {
    base: HashSet<Pred>,
    mat: HashSet<Pred>,
    /// Base predicates read by some materialized rule; deltas on any other
    /// base predicate leave every materialized relation unchanged.
    relevant_base: HashSet<Pred>,
    /// Components in dependency-first (topological) order.
    sccs: Vec<SccPlan>,
    store: Mutex<Store>,
    probes: AtomicU64,
    state_hits: AtomicU64,
    rebuilds: AtomicU64,
    maintained_ops: AtomicU64,
    delta_tuples: AtomicU64,
    maintain_ns: AtomicU64,
}

impl std::fmt::Debug for Materializer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Materializer")
            .field("preds", &self.mat.len())
            .field("sccs", &self.sccs.len())
            .finish()
    }
}

impl Materializer {
    /// Compile the materializable fragment of `program`: the greatest set
    /// of derived predicates whose rules all flatten to Datalog, depend
    /// (positively) only on base predicates and each other, negate only
    /// base predicates, and are *delta-safe* (every variable a negation or
    /// a demanding builtin reads is bound by an earlier positive atom, so
    /// delta-joins that pre-bind a later position agree with left-to-right
    /// evaluation). Errs when the set is empty.
    pub fn compile(program: &Program) -> Result<Materializer, NotMaterializable> {
        let base: HashSet<Pred> = program.base_preds().collect();
        let mut derived: Vec<Pred> = program.derived_preds().collect();
        derived.sort();
        derived.dedup();
        if derived.is_empty() {
            return Err(NotMaterializable {
                reason: "the program has no derived predicates".into(),
            });
        }
        let mut flat: HashMap<Pred, Vec<FlatRule>> = HashMap::new();
        let mut mat: HashSet<Pred> = HashSet::new();
        for &p in &derived {
            let rules: Result<Vec<FlatRule>, _> = program
                .rules_for(p)
                .iter()
                .map(|rid| flatten_rule(program.rule(*rid)))
                .collect();
            match rules {
                Ok(rs) if rs.iter().all(delta_safe) => {
                    flat.insert(p, rs);
                    mat.insert(p);
                }
                _ => {}
            }
        }
        // Greatest fixpoint: a predicate whose rules read a non-materializable
        // derived predicate (or negate a derived predicate) drops out too.
        loop {
            let drop: Vec<Pred> = mat
                .iter()
                .copied()
                .filter(|p| {
                    flat[p].iter().any(|r| {
                        r.body.iter().any(|l| match l {
                            Lit::Atom(a) => !base.contains(&a.pred) && !mat.contains(&a.pred),
                            Lit::NegAtom(a) => !base.contains(&a.pred),
                            Lit::Builtin(..) => false,
                        })
                    })
                })
                .collect();
            if drop.is_empty() {
                break;
            }
            for p in drop {
                mat.remove(&p);
            }
        }
        if mat.is_empty() {
            return Err(NotMaterializable {
                reason: "no derived predicate is Datalog-evaluable".into(),
            });
        }

        // SCC decomposition of the materialized dependency graph. Tarjan
        // emits components callees-first, which is exactly the evaluation
        // order the circuit needs.
        let mut nodes: Vec<Pred> = mat.iter().copied().collect();
        nodes.sort();
        let index: HashMap<Pred, usize> = nodes.iter().enumerate().map(|(i, p)| (*p, i)).collect();
        let adj: Vec<Vec<usize>> = nodes
            .iter()
            .map(|p| {
                let mut out: Vec<usize> = flat[p]
                    .iter()
                    .flat_map(|r| r.body.iter())
                    .filter_map(|l| match l {
                        Lit::Atom(a) => index.get(&a.pred).copied(),
                        _ => None,
                    })
                    .collect();
                out.sort_unstable();
                out.dedup();
                out
            })
            .collect();
        let comps = tarjan(&adj);
        let sccs: Vec<SccPlan> = comps
            .into_iter()
            .map(|mut comp| {
                comp.sort_unstable();
                let preds: Vec<Pred> = comp.iter().map(|&i| nodes[i]).collect();
                let recursive = comp.len() > 1 || adj[comp[0]].contains(&comp[0]);
                let rules: Vec<FlatRule> =
                    preds.iter().flat_map(|p| flat[p].iter().cloned()).collect();
                let deps: HashSet<Pred> = rules
                    .iter()
                    .flat_map(|r| r.body.iter())
                    .filter_map(|l| match l {
                        Lit::Atom(a) | Lit::NegAtom(a) => Some(a.pred),
                        Lit::Builtin(..) => None,
                    })
                    .collect();
                SccPlan {
                    preds,
                    recursive,
                    rules,
                    deps,
                }
            })
            .collect();
        let relevant_base: HashSet<Pred> = sccs
            .iter()
            .flat_map(|s| s.deps.iter())
            .copied()
            .filter(|p| base.contains(p))
            .collect();
        Ok(Materializer {
            base,
            mat,
            relevant_base,
            sccs,
            store: Mutex::new(Store::default()),
            probes: AtomicU64::new(0),
            state_hits: AtomicU64::new(0),
            rebuilds: AtomicU64::new(0),
            maintained_ops: AtomicU64::new(0),
            delta_tuples: AtomicU64::new(0),
            maintain_ns: AtomicU64::new(0),
        })
    }

    /// Is this predicate maintained by the circuit?
    pub fn is_materialized(&self, pred: Pred) -> bool {
        self.mat.contains(&pred)
    }

    /// The materialized predicates, sorted.
    pub fn materialized_preds(&self) -> Vec<Pred> {
        let mut out: Vec<Pred> = self.mat.iter().copied().collect();
        out.sort();
        out
    }

    /// The base predicates some materialized rule reads, in unspecified
    /// order — the read-set support of a view probe. A probe's answer is a
    /// function of exactly these base relations, so recording them (rather
    /// than the derived predicate, which is not a stored relation) keeps
    /// per-relation OCC validation sound under `--materialize`.
    pub fn base_support(&self) -> impl Iterator<Item = Pred> + '_ {
        self.relevant_base.iter().copied()
    }

    /// Answer a ground call on a materialized predicate with an indexed
    /// probe: `None` when the atom is not ground or its predicate is not
    /// materialized (caller must fall back to rule unfolding), `Some(b)`
    /// otherwise. A probe on an unseen database version triggers a full
    /// (re)build for that version; subsequent versions reached by committed
    /// deltas are maintained incrementally.
    pub fn holds(&self, db: &Database, atom: &Atom) -> Option<bool> {
        if !self.mat.contains(&atom.pred) {
            return None;
        }
        let tuple = Tuple::new(atom.ground_args()?);
        self.probes.fetch_add(1, Ordering::Relaxed);
        let state = self.state_for(db);
        Some(state.get(&atom.pred).is_some_and(|r| r.contains(&tuple)))
    }

    /// All tuples of a materialized predicate at `db`'s version, sorted.
    /// Builds the version's state if absent; empty for non-materialized
    /// predicates.
    pub fn facts(&self, db: &Database, pred: Pred) -> Vec<Tuple> {
        if !self.mat.contains(&pred) {
            return Vec::new();
        }
        self.state_for(db)
            .get(&pred)
            .map(|r| r.to_vec())
            .unwrap_or_default()
    }

    /// The materialized state for a database version, building it if this
    /// digest was never seen (or was evicted).
    fn state_for(&self, db: &Database) -> Arc<MatState> {
        let digest = db.digest();
        if let Some(st) = self
            .store
            .lock()
            .expect("mat store poisoned")
            .map
            .get(&digest)
        {
            self.state_hits.fetch_add(1, Ordering::Relaxed);
            return st.clone();
        }
        self.rebuilds.fetch_add(1, Ordering::Relaxed);
        let st = Arc::new(self.build(db));
        self.store_state(digest, st.clone());
        st
    }

    /// Maintain the state across a committed delta: `ops` is the exact op
    /// sequence taking `pre` to `post` (no-op entries included). O(1) when
    /// `pre`'s state is not resident (maintenance is lazy until a probe
    /// seeds a version) or `post`'s already is. Rollback needs no inverse
    /// pass: earlier digests keep their states.
    pub fn apply_ops(&self, pre: &Database, ops: &[DeltaOp], post: &Database) {
        if ops.is_empty() || pre.digest() == post.digest() {
            return;
        }
        let (pre_state, have_post) = {
            let s = self.store.lock().expect("mat store poisoned");
            (
                s.map.get(&pre.digest()).cloned(),
                s.map.contains_key(&post.digest()),
            )
        };
        let Some(pre_state) = pre_state else { return };
        if have_post {
            return;
        }
        let t0 = std::time::Instant::now();
        let mut state: MatState = (*pre_state).clone();
        let mut touched = false;
        let mut cur = pre.clone();
        for op in ops {
            let (pred, tuple) = match op {
                DeltaOp::Ins(p, t) | DeltaOp::Del(p, t) => (*p, t),
            };
            let Ok(next) = op.apply(&cur) else { return };
            if self.relevant_base.contains(&pred) {
                let sign = match (cur.contains(pred, tuple), next.contains(pred, tuple)) {
                    (false, true) => 1,
                    (true, false) => -1,
                    _ => 0,
                };
                if sign != 0 {
                    self.propagate(&cur, &next, pred, tuple.clone(), sign, &mut state);
                    touched = true;
                }
            }
            cur = next;
        }
        debug_assert_eq!(cur.digest(), post.digest(), "ops do not take pre to post");
        self.maintained_ops
            .fetch_add(ops.len() as u64, Ordering::Relaxed);
        self.maintain_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        let st = if touched { Arc::new(state) } else { pre_state };
        self.store_state(post.digest(), st);
    }

    fn store_state(&self, digest: u128, state: Arc<MatState>) {
        let mut s = self.store.lock().expect("mat store poisoned");
        if s.map.contains_key(&digest) {
            return;
        }
        while s.map.len() >= MAX_STATES {
            let Some(old) = s.order.pop_front() else {
                break;
            };
            s.map.remove(&old);
        }
        s.order.push_back(digest);
        s.map.insert(digest, state);
    }

    // ------------------------------------------------------------------
    // Full build (first probe of a database version)
    // ------------------------------------------------------------------

    fn build(&self, db: &Database) -> MatState {
        let mut state: MatState = self
            .mat
            .iter()
            .map(|p| (*p, CountedRelation::new(p.arity as usize)))
            .collect();
        for scc in &self.sccs {
            if scc.recursive {
                self.build_recursive(scc, db, &mut state);
            } else {
                self.build_counting(scc, db, &mut state);
            }
        }
        state
    }

    /// Non-recursive component: one pass, counting every rule
    /// instantiation.
    fn build_counting(&self, scc: &SccPlan, db: &Database, state: &mut MatState) {
        let q = scc.preds[0];
        let mut counts: HashMap<Tuple, i64> = HashMap::new();
        {
            let v = Views { db, state: &*state };
            for rule in &scc.rules {
                self.join_rule(rule, None, None, v, v, &mut |t| {
                    *counts.entry(t).or_insert(0) += 1;
                });
            }
        }
        let mut rel = state[&q].clone();
        for (t, c) in counts {
            rel = rel.add(&t, c).0;
        }
        state.insert(q, rel);
    }

    /// Recursive component: semi-naive set-semantics fixpoint (every member
    /// carries count 1).
    fn build_recursive(&self, scc: &SccPlan, db: &Database, state: &mut MatState) {
        let internal: HashSet<Pred> = scc.preds.iter().copied().collect();
        let mut delta: Vec<(Pred, Tuple)> = Vec::new();
        let mut pending: Vec<(Pred, Tuple)> = Vec::new();
        {
            let v = Views { db, state: &*state };
            for rule in &scc.rules {
                let hp = rule.head.pred;
                self.join_rule(rule, None, None, v, v, &mut |t| pending.push((hp, t)));
            }
        }
        loop {
            for (p, t) in pending.drain(..) {
                if !state[&p].contains(&t) {
                    let rel = state[&p].add(&t, 1).0;
                    state.insert(p, rel);
                    delta.push((p, t));
                }
            }
            if delta.is_empty() {
                break;
            }
            let drained: Vec<(Pred, Tuple)> = std::mem::take(&mut delta);
            let v = Views { db, state: &*state };
            for (dp, dt) in &drained {
                for rule in &scc.rules {
                    let hp = rule.head.pred;
                    for (pos, lit) in rule.body.iter().enumerate() {
                        if let Lit::Atom(a) = lit {
                            if a.pred == *dp && internal.contains(dp) {
                                self.join_rule(rule, Some((pos, dt)), None, v, v, &mut |t| {
                                    pending.push((hp, t));
                                });
                            }
                        }
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Incremental maintenance
    // ------------------------------------------------------------------

    /// Push one base-relation membership change through the circuit in
    /// topological order, cascading derived membership events.
    fn propagate(
        &self,
        old_db: &Database,
        new_db: &Database,
        pred: Pred,
        tuple: Tuple,
        sign: i64,
        state: &mut MatState,
    ) {
        let old_state = state.clone();
        let mut events: Events = HashMap::new();
        events.insert(pred, vec![(tuple, sign)]);
        for scc in &self.sccs {
            if !scc.deps.iter().any(|p| events.contains_key(p)) {
                continue;
            }
            if scc.recursive {
                self.maintain_recursive(scc, old_db, new_db, &old_state, state, &mut events);
            } else {
                self.maintain_counting(scc, old_db, new_db, &old_state, state, &mut events);
            }
        }
    }

    /// Exact counting maintenance for a non-recursive component: signed
    /// finite differencing — for each affected body position i,
    /// `new₁…newᵢ₋₁ × Δᵢ × oldᵢ₊₁…oldₙ` — telescopes to the exact count
    /// change. A `not` literal flips the delta's sign.
    fn maintain_counting(
        &self,
        scc: &SccPlan,
        old_db: &Database,
        new_db: &Database,
        old_state: &MatState,
        state: &mut MatState,
        events: &mut Events,
    ) {
        let q = scc.preds[0];
        let mut net: HashMap<Tuple, i64> = HashMap::new();
        {
            let new_v = Views {
                db: new_db,
                state: &*state,
            };
            let old_v = Views {
                db: old_db,
                state: old_state,
            };
            for rule in &scc.rules {
                for (pos, lit) in rule.body.iter().enumerate() {
                    let (lp, neg) = match lit {
                        Lit::Atom(a) => (a.pred, false),
                        Lit::NegAtom(a) => (a.pred, true),
                        Lit::Builtin(..) => continue,
                    };
                    let Some(evts) = events.get(&lp) else {
                        continue;
                    };
                    for (t, s) in evts {
                        let sign = if neg { -s } else { *s };
                        self.join_rule(rule, Some((pos, t)), None, new_v, old_v, &mut |h| {
                            *net.entry(h).or_insert(0) += sign;
                        });
                    }
                }
            }
        }
        let mut rel = state[&q].clone();
        let mut evs: Vec<(Tuple, i64)> = Vec::new();
        for (t, d) in net {
            if d == 0 {
                continue;
            }
            let (next, tr) = rel.add(&t, d);
            rel = next;
            match tr {
                Transition::Appeared => evs.push((t, 1)),
                Transition::Disappeared => evs.push((t, -1)),
                Transition::Unchanged => {}
            }
        }
        state.insert(q, rel);
        if !evs.is_empty() {
            self.delta_tuples
                .fetch_add(evs.len() as u64, Ordering::Relaxed);
            events.insert(q, evs);
        }
    }

    /// DRed maintenance for a recursive component: overdelete every tuple
    /// with a derivation through a negative event (against the old state),
    /// rederive survivors from the new state, then semi-naive insertion for
    /// positive events.
    fn maintain_recursive(
        &self,
        scc: &SccPlan,
        old_db: &Database,
        new_db: &Database,
        old_state: &MatState,
        state: &mut MatState,
        events: &mut Events,
    ) {
        let internal: HashSet<Pred> = scc.preds.iter().copied().collect();
        let mut deleted: HashSet<(Pred, Tuple)> = HashSet::new();
        let mut inserted: HashSet<(Pred, Tuple)> = HashSet::new();
        let mut wl: VecDeque<(Pred, Tuple)> = VecDeque::new();
        let mut cand: Vec<(Pred, Tuple)> = Vec::new();

        // Phase 1: overdeletion, entirely against the old views.
        {
            let old_v = Views {
                db: old_db,
                state: old_state,
            };
            for rule in &scc.rules {
                let hp = rule.head.pred;
                for (pos, lit) in rule.body.iter().enumerate() {
                    let (lp, neg) = match lit {
                        Lit::Atom(a) => (a.pred, false),
                        Lit::NegAtom(a) => (a.pred, true),
                        Lit::Builtin(..) => continue,
                    };
                    if internal.contains(&lp) {
                        continue;
                    }
                    let Some(evts) = events.get(&lp) else {
                        continue;
                    };
                    for (t, s) in evts {
                        if (if neg { -s } else { *s }) < 0 {
                            self.join_rule(rule, Some((pos, t)), None, old_v, old_v, &mut |h| {
                                cand.push((hp, h));
                            });
                        }
                    }
                }
            }
        }
        loop {
            for (p, h) in cand.drain(..) {
                if state[&p].contains(&h) && deleted.insert((p, h.clone())) {
                    let rel = state[&p].add(&h, -state[&p].count(&h)).0;
                    state.insert(p, rel);
                    wl.push_back((p, h));
                }
            }
            let Some((dp, dt)) = wl.pop_front() else {
                break;
            };
            let old_v = Views {
                db: old_db,
                state: old_state,
            };
            for rule in &scc.rules {
                let hp = rule.head.pred;
                for (pos, lit) in rule.body.iter().enumerate() {
                    if let Lit::Atom(a) = lit {
                        if a.pred == dp {
                            self.join_rule(rule, Some((pos, &dt)), None, old_v, old_v, &mut |h| {
                                cand.push((hp, h));
                            });
                        }
                    }
                }
            }
        }

        // Phase 2: rederivation from the new external state and the reduced
        // component state. Tuples whose alternative support runs through
        // other rederived tuples are recovered by the insertion phase.
        for (p, t) in &deleted {
            let mut found = false;
            {
                let v = Views {
                    db: new_db,
                    state: &*state,
                };
                for rule in &scc.rules {
                    if rule.head.pred != *p || found {
                        continue;
                    }
                    self.join_rule(rule, None, Some(t), v, v, &mut |_| {
                        found = true;
                    });
                }
            }
            if found {
                let rel = state[p].add(t, 1).0;
                state.insert(*p, rel);
                inserted.insert((*p, t.clone()));
                wl.push_back((*p, t.clone()));
            }
        }

        // Phase 3: semi-naive insertion for positive events, against the
        // new views and the growing component state.
        {
            let v = Views {
                db: new_db,
                state: &*state,
            };
            for rule in &scc.rules {
                let hp = rule.head.pred;
                for (pos, lit) in rule.body.iter().enumerate() {
                    let (lp, neg) = match lit {
                        Lit::Atom(a) => (a.pred, false),
                        Lit::NegAtom(a) => (a.pred, true),
                        Lit::Builtin(..) => continue,
                    };
                    if internal.contains(&lp) {
                        continue;
                    }
                    let Some(evts) = events.get(&lp) else {
                        continue;
                    };
                    for (t, s) in evts {
                        if (if neg { -s } else { *s }) > 0 {
                            self.join_rule(rule, Some((pos, t)), None, v, v, &mut |h| {
                                cand.push((hp, h));
                            });
                        }
                    }
                }
            }
        }
        loop {
            for (p, h) in cand.drain(..) {
                if !state[&p].contains(&h) {
                    let rel = state[&p].add(&h, 1 - state[&p].count(&h)).0;
                    state.insert(p, rel);
                    inserted.insert((p, h.clone()));
                    wl.push_back((p, h));
                }
            }
            let Some((dp, dt)) = wl.pop_front() else {
                break;
            };
            let v = Views {
                db: new_db,
                state: &*state,
            };
            for rule in &scc.rules {
                let hp = rule.head.pred;
                for (pos, lit) in rule.body.iter().enumerate() {
                    if let Lit::Atom(a) = lit {
                        if a.pred == dp {
                            self.join_rule(rule, Some((pos, &dt)), None, v, v, &mut |h| {
                                cand.push((hp, h));
                            });
                        }
                    }
                }
            }
        }

        // Net membership events for downstream components.
        let mut per_pred: HashMap<Pred, Vec<(Tuple, i64)>> = HashMap::new();
        for (p, t) in deleted.iter().chain(inserted.iter()) {
            let was = old_state[p].contains(t);
            let is = state[p].contains(t);
            let ev = match (was, is) {
                (false, true) => Some(1),
                (true, false) => Some(-1),
                _ => None,
            };
            if let Some(s) = ev {
                let entry = per_pred.entry(*p).or_default();
                if !entry.iter().any(|(et, es)| et == t && *es == s) {
                    entry.push((t.clone(), s));
                }
            }
        }
        for (p, evs) in per_pred {
            self.delta_tuples
                .fetch_add(evs.len() as u64, Ordering::Relaxed);
            events.insert(p, evs);
        }
    }

    // ------------------------------------------------------------------
    // Join plans
    // ------------------------------------------------------------------

    /// Enumerate rule-body instantiations left to right, mirroring the
    /// bottom-up evaluator's semantics exactly (unbound `not` arguments and
    /// builtin faults are silent no-matches). With a `driver`, that
    /// position is pre-bound to the delta tuple, positions before it read
    /// `new_v` and positions after it read `old_v` — the semi-naive
    /// prefix-new/suffix-old split. With `head_bound`, the head is unified
    /// first (rederivation checks).
    fn join_rule(
        &self,
        rule: &FlatRule,
        driver: Option<(usize, &Tuple)>,
        head_bound: Option<&Tuple>,
        new_v: Views<'_>,
        old_v: Views<'_>,
        emit: &mut dyn FnMut(Tuple),
    ) {
        let mut b = Bindings::new();
        b.alloc(rule.num_vars);
        if let Some(t) = head_bound {
            if rule.head.args.len() != t.arity() {
                return;
            }
            let ok = rule
                .head
                .args
                .iter()
                .zip(t.values())
                .all(|(a, v)| unify_terms(&mut b, *a, Term::Val(*v)));
            if !ok {
                return;
            }
        }
        if let Some((pos, t)) = driver {
            let args = match &rule.body[pos] {
                Lit::Atom(a) | Lit::NegAtom(a) => &a.args,
                Lit::Builtin(..) => return,
            };
            if args.len() != t.arity() {
                return;
            }
            let ok = args
                .iter()
                .zip(t.values())
                .all(|(a, v)| unify_terms(&mut b, *a, Term::Val(*v)));
            if !ok {
                return;
            }
        }
        self.join_from(rule, 0, driver.map(|(p, _)| p), new_v, old_v, &mut b, emit);
    }

    #[allow(clippy::too_many_arguments)]
    fn join_from(
        &self,
        rule: &FlatRule,
        idx: usize,
        driver_pos: Option<usize>,
        new_v: Views<'_>,
        old_v: Views<'_>,
        b: &mut Bindings,
        emit: &mut dyn FnMut(Tuple),
    ) {
        if idx == rule.body.len() {
            let values: Option<Vec<Value>> =
                rule.head.args.iter().map(|t| b.value_of(*t)).collect();
            if let Some(values) = values {
                emit(Tuple::new(values));
            }
            return;
        }
        if driver_pos == Some(idx) {
            return self.join_from(rule, idx + 1, driver_pos, new_v, old_v, b, emit);
        }
        let v = match driver_pos {
            Some(p) if idx > p => old_v,
            _ => new_v,
        };
        match &rule.body[idx] {
            Lit::Atom(atom) => {
                let resolved: Vec<Term> = atom.args.iter().map(|t| b.resolve(*t)).collect();
                let pattern: Vec<Option<Value>> = resolved.iter().map(|t| t.as_value()).collect();
                for t in self.view_select(v, atom.pred, &pattern) {
                    let mark = b.mark();
                    let ok = resolved
                        .iter()
                        .zip(t.values())
                        .all(|(a, vv)| unify_terms(b, *a, Term::Val(*vv)));
                    if ok {
                        self.join_from(rule, idx + 1, driver_pos, new_v, old_v, b, emit);
                    }
                    b.undo_to(mark);
                }
            }
            Lit::NegAtom(atom) => {
                let values: Option<Vec<Value>> = atom.args.iter().map(|t| b.value_of(*t)).collect();
                if let Some(values) = values {
                    if !self.view_contains(v, atom.pred, &Tuple::new(values)) {
                        self.join_from(rule, idx + 1, driver_pos, new_v, old_v, b, emit);
                    }
                }
            }
            Lit::Builtin(op, terms) => {
                let mark = b.mark();
                if matches!(crate::kernel::eval_builtin(b, *op, terms), Ok(true)) {
                    self.join_from(rule, idx + 1, driver_pos, new_v, old_v, b, emit);
                }
                b.undo_to(mark);
            }
        }
    }

    fn view_select(&self, v: Views<'_>, pred: Pred, pattern: &[Option<Value>]) -> Vec<Tuple> {
        if self.base.contains(&pred) {
            v.db.relation(pred)
                .map(|r| r.select(pattern))
                .unwrap_or_default()
        } else {
            v.state
                .get(&pred)
                .map(|r| r.select(pattern))
                .unwrap_or_default()
        }
    }

    fn view_contains(&self, v: Views<'_>, pred: Pred, t: &Tuple) -> bool {
        if self.base.contains(&pred) {
            v.db.contains(pred, t)
        } else {
            v.state.get(&pred).is_some_and(|r| r.contains(t))
        }
    }

    // ------------------------------------------------------------------
    // Lifetime counters
    // ------------------------------------------------------------------

    /// Ground probes answered from a materialized relation.
    pub fn probes(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }

    /// Probes (or maintenance passes) that found the version's state
    /// resident.
    pub fn state_hits(&self) -> u64 {
        self.state_hits.load(Ordering::Relaxed)
    }

    /// Full builds (first probe of a version, or probe after eviction).
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds.load(Ordering::Relaxed)
    }

    /// Delta ops fed through incremental maintenance.
    pub fn maintained_ops(&self) -> u64 {
        self.maintained_ops.load(Ordering::Relaxed)
    }

    /// Derived membership events produced by maintenance (the circuit's
    /// total delta volume).
    pub fn delta_tuples(&self) -> u64 {
        self.delta_tuples.load(Ordering::Relaxed)
    }

    /// Nanoseconds spent in incremental maintenance.
    pub fn maintain_ns(&self) -> u64 {
        self.maintain_ns.load(Ordering::Relaxed)
    }

    /// Database versions currently holding a materialized state.
    pub fn states(&self) -> usize {
        self.store.lock().expect("mat store poisoned").map.len()
    }
}

/// Read view for one side of a delta-join: base relations from a database
/// version, derived relations from a materialized state.
#[derive(Clone, Copy)]
struct Views<'a> {
    db: &'a Database,
    state: &'a MatState,
}

/// Delta-join safety: every variable read by a `not` literal or a
/// demanding builtin (`!=`, comparisons, arithmetic inputs) must be bound
/// by an earlier positive atom (or determined by an earlier `=`/arithmetic
/// output over such variables). Rules violating this evaluate differently
/// once a delta pre-binds a later position, so they are excluded from
/// materialization.
fn delta_safe(rule: &FlatRule) -> bool {
    let mut bound: HashSet<td_core::Var> = HashSet::new();
    let term_vars = |t: &Term| -> Vec<td_core::Var> { t.as_var().into_iter().collect() };
    let all_bound = |ts: &[Term], bound: &HashSet<td_core::Var>| {
        ts.iter().flat_map(term_vars).all(|v| bound.contains(&v))
    };
    for lit in &rule.body {
        match lit {
            Lit::Atom(a) => {
                bound.extend(a.vars());
            }
            Lit::NegAtom(a) => {
                if !a
                    .args
                    .iter()
                    .flat_map(term_vars)
                    .all(|v| bound.contains(&v))
                {
                    return false;
                }
            }
            Lit::Builtin(op, terms) => match op {
                Builtin::Eq => {
                    // `=` determines one side from the other; if either side
                    // is fully bound, the other becomes so.
                    if all_bound(&terms[..1], &bound) || all_bound(&terms[1..2], &bound) {
                        bound.extend(terms.iter().flat_map(term_vars));
                    }
                }
                Builtin::Ne | Builtin::Lt | Builtin::Le | Builtin::Gt | Builtin::Ge => {
                    if !all_bound(terms, &bound) {
                        return false;
                    }
                }
                Builtin::Add | Builtin::Sub | Builtin::Mul => {
                    if !all_bound(&terms[..2], &bound) {
                        return false;
                    }
                    bound.extend(term_vars(&terms[2]));
                }
            },
        }
    }
    true
}

/// Tarjan's SCC algorithm; components are emitted callees-first, i.e. in a
/// valid bottom-up evaluation order.
fn tarjan(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    struct T<'a> {
        adj: &'a [Vec<usize>],
        index: Vec<Option<usize>>,
        low: Vec<usize>,
        on_stack: Vec<bool>,
        stack: Vec<usize>,
        next: usize,
        out: Vec<Vec<usize>>,
    }
    fn visit(t: &mut T<'_>, v: usize) {
        t.index[v] = Some(t.next);
        t.low[v] = t.next;
        t.next += 1;
        t.stack.push(v);
        t.on_stack[v] = true;
        for i in 0..t.adj[v].len() {
            let w = t.adj[v][i];
            match t.index[w] {
                None => {
                    visit(t, w);
                    t.low[v] = t.low[v].min(t.low[w]);
                }
                Some(wi) if t.on_stack[w] => {
                    t.low[v] = t.low[v].min(wi);
                }
                _ => {}
            }
        }
        if t.low[v] == t.index[v].expect("visited") {
            let mut comp = Vec::new();
            loop {
                let w = t.stack.pop().expect("stack non-empty");
                t.on_stack[w] = false;
                comp.push(w);
                if w == v {
                    break;
                }
            }
            t.out.push(comp);
        }
    }
    let n = adj.len();
    let mut t = T {
        adj,
        index: vec![None; n],
        low: vec![0; n],
        on_stack: vec![false; n],
        stack: Vec::new(),
        next: 0,
        out: Vec::new(),
    };
    for v in 0..n {
        if t.index[v].is_none() {
            visit(&mut t, v);
        }
    }
    t.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::load_init;
    use td_db::tuple;
    use td_parser::parse_program;

    fn setup(src: &str) -> (Program, Database) {
        let parsed = parse_program(src).expect("parses");
        let db = Database::with_schema_of(&parsed.program);
        let db = load_init(&db, &parsed.init).expect("init");
        (parsed.program, db)
    }

    /// Oracle: the materialized facts of every circuit predicate must equal
    /// the bottom-up fixpoint restricted to it.
    fn assert_matches_fixpoint(m: &Materializer, program: &Program, db: &Database) {
        let fix = crate::datalog::evaluate(program, db).expect("datalog-evaluable");
        for p in m.materialized_preds() {
            let mut expect: Vec<Tuple> = fix.facts_of(p).cloned().collect();
            expect.sort();
            assert_eq!(m.facts(db, p), expect, "{p} at digest {:x}", db.digest());
        }
    }

    /// Apply one op both to the db and through the circuit.
    fn step(m: &Materializer, db: &Database, op: DeltaOp) -> Database {
        let next = op.apply(db).expect("op applies");
        m.apply_ops(db, std::slice::from_ref(&op), &next);
        next
    }

    #[test]
    fn compile_partitions_into_sccs() {
        let (p, _) = setup(
            "base e/2. base broken/1.
             path(X, Y) <- e(X, Y).
             path(X, Z) <- e(X, Y) * path(Y, Z).
             healthy(X) <- e(X, X) * not broken(X).
             top(X) <- path(X, X) * healthy(X).",
        );
        let m = Materializer::compile(&p).unwrap();
        assert_eq!(m.materialized_preds().len(), 3);
        assert!(m.is_materialized(Pred::new("path", 2)));
        assert!(m.is_materialized(Pred::new("top", 1)));
        let path_scc = m
            .sccs
            .iter()
            .find(|s| s.preds.contains(&Pred::new("path", 2)))
            .unwrap();
        assert!(path_scc.recursive);
        let top_scc = m
            .sccs
            .iter()
            .find(|s| s.preds.contains(&Pred::new("top", 1)))
            .unwrap();
        assert!(!top_scc.recursive);
        // `top` depends on both others, so its component must come last.
        assert_eq!(m.sccs.last().unwrap().preds, vec![Pred::new("top", 1)]);
    }

    #[test]
    fn non_datalog_preds_are_excluded_transitively() {
        let (p, _) = setup(
            "base t/1. base e/2.
             act(X) <- e(X, X) * ins.t(X).
             uses_act(X) <- act(X).
             pure(X) <- e(X, X).",
        );
        let m = Materializer::compile(&p).unwrap();
        assert_eq!(m.materialized_preds(), vec![Pred::new("pure", 1)]);
    }

    #[test]
    fn delta_unsafe_rules_are_excluded() {
        // `not broken(X)` before any positive binding of X: the bottom-up
        // evaluator silently derives nothing, but a delta-join driving
        // e(X, Y) would bind X — so the predicate must not be materialized.
        let (p, _) = setup(
            "base e/2. base broken/1.
             odd(X) <- not broken(X) * e(X, X).
             fine(X) <- e(X, X) * not broken(X).",
        );
        let m = Materializer::compile(&p).unwrap();
        assert_eq!(m.materialized_preds(), vec![Pred::new("fine", 1)]);
    }

    #[test]
    fn no_materializable_predicates_is_an_error() {
        let (p, _) = setup("base t/0.");
        assert!(Materializer::compile(&p).is_err());
        let (p, _) = setup("base t/0. r <- ins.t.");
        assert!(Materializer::compile(&p).is_err());
    }

    #[test]
    fn build_matches_bottom_up_fixpoint() {
        let (p, db) = setup(
            "base e/2. base blocked/1. base n/1.
             init e(a, b). init e(b, c). init e(c, d). init blocked(c).
             init n(1). init n(2). init n(3).
             path(X, Y) <- e(X, Y).
             path(X, Z) <- e(X, Y) * path(Y, Z).
             reach(X) <- e(a, X) * not blocked(X).
             reach(Y) <- reach(X) * e(X, Y) * not blocked(Y).
             big(X) <- n(X) * X > 1.
             double(Y) <- n(X) * Y is X + X.",
        );
        let m = Materializer::compile(&p).unwrap();
        assert_matches_fixpoint(&m, &p, &db);
        assert_eq!(m.rebuilds(), 1);
    }

    #[test]
    fn counting_tracks_alternative_derivations() {
        // q(X) has two independent supports; deleting one leaves it derivable.
        let (p, db) = setup(
            "base r/1. base s/1.
             init r(1). init s(1).
             q(X) <- r(X).
             q(X) <- s(X).",
        );
        let m = Materializer::compile(&p).unwrap();
        let q = Pred::new("q", 1);
        assert_eq!(m.facts(&db, q), vec![tuple!(1)]);
        let db2 = step(&m, &db, DeltaOp::Del(Pred::new("r", 1), tuple!(1)));
        assert_eq!(m.facts(&db2, q), vec![tuple!(1)], "s(1) still supports");
        let db3 = step(&m, &db2, DeltaOp::Del(Pred::new("s", 1), tuple!(1)));
        assert!(m.facts(&db3, q).is_empty(), "last support gone");
        assert_eq!(m.rebuilds(), 1, "maintenance, not rebuilds");
        assert_matches_fixpoint(&m, &p, &db3);
    }

    #[test]
    fn negation_flips_the_delta_sign() {
        let (p, db) = setup(
            "base node/1. base broken/1.
             init node(a). init node(b).
             healthy(X) <- node(X) * not broken(X).",
        );
        let m = Materializer::compile(&p).unwrap();
        let healthy = Pred::new("healthy", 1);
        assert_eq!(m.facts(&db, healthy).len(), 2);
        let db2 = step(&m, &db, DeltaOp::Ins(Pred::new("broken", 1), tuple!("b")));
        assert_eq!(m.facts(&db2, healthy), vec![tuple!("a")]);
        let db3 = step(&m, &db2, DeltaOp::Del(Pred::new("broken", 1), tuple!("b")));
        assert_eq!(m.facts(&db3, healthy).len(), 2);
        assert_eq!(m.rebuilds(), 1);
    }

    #[test]
    fn dred_deletes_and_rederives_in_cycles() {
        // A diamond with a cycle: deleting one edge must not delete facts
        // that remain derivable around the cycle.
        let (p, db) = setup(
            "base e/2.
             init e(a, b). init e(b, c). init e(c, a). init e(a, c).
             path(X, Y) <- e(X, Y).
             path(X, Z) <- e(X, Y) * path(Y, Z).",
        );
        let m = Materializer::compile(&p).unwrap();
        assert_matches_fixpoint(&m, &p, &db);
        let db2 = step(&m, &db, DeltaOp::Del(Pred::new("e", 2), tuple!("a", "c")));
        assert_matches_fixpoint(&m, &p, &db2);
        assert!(m
            .facts(&db2, Pred::new("path", 2))
            .contains(&tuple!("a", "c")));
        let db3 = step(&m, &db2, DeltaOp::Del(Pred::new("e", 2), tuple!("c", "a")));
        assert_matches_fixpoint(&m, &p, &db3);
        assert_eq!(m.rebuilds(), 1);
    }

    #[test]
    fn irrelevant_base_deltas_share_the_state() {
        let (p, db) = setup(
            "base e/2. base junk/1.
             init e(a, b).
             path(X, Y) <- e(X, Y).
             path(X, Z) <- e(X, Y) * path(Y, Z).",
        );
        let m = Materializer::compile(&p).unwrap();
        let _ = m.facts(&db, Pred::new("path", 2));
        let db2 = step(&m, &db, DeltaOp::Ins(Pred::new("junk", 1), tuple!(9)));
        assert_eq!(m.facts(&db2, Pred::new("path", 2)), vec![tuple!("a", "b")]);
        assert_eq!(m.rebuilds(), 1);
        assert_eq!(m.states(), 2, "post state stored by reference");
    }

    #[test]
    fn rollback_rekeys_to_the_retained_state() {
        let (p, db) = setup(
            "base e/2.
             init e(a, b).
             path(X, Y) <- e(X, Y).
             path(X, Z) <- e(X, Y) * path(Y, Z).",
        );
        let m = Materializer::compile(&p).unwrap();
        let path = Pred::new("path", 2);
        let before = m.facts(&db, path);
        let op = DeltaOp::Ins(Pred::new("e", 2), tuple!("b", "c"));
        let db2 = step(&m, &db, op);
        assert_eq!(m.facts(&db2, path).len(), 3);
        // "Rollback": the engine simply resumes from the old snapshot.
        assert_eq!(m.facts(&db, path), before);
        assert_eq!(m.rebuilds(), 1, "old digest still resident");
    }

    #[test]
    fn maintenance_matches_rebuild_under_random_churn() {
        let (p, db0) = setup(
            "base e/2. base blocked/1.
             path(X, Y) <- e(X, Y).
             path(X, Z) <- e(X, Y) * path(Y, Z).
             reach(X) <- e(n0, X) * not blocked(X).
             reach(Y) <- reach(X) * e(X, Y) * not blocked(Y).",
        );
        let m = Materializer::compile(&p).unwrap();
        let names = ["n0", "n1", "n2", "n3", "n4"];
        let mut db = db0;
        let mut x: u64 = 0x2545F4914F6CDD1D;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let _ = m.facts(&db, Pred::new("path", 2)); // seed the version
        for _ in 0..60 {
            let r = rng();
            let op = if r % 3 == 0 {
                let n = names[(rng() % 5) as usize];
                if r % 2 == 0 {
                    DeltaOp::Ins(Pred::new("blocked", 1), Tuple::new(vec![Value::sym(n)]))
                } else {
                    DeltaOp::Del(Pred::new("blocked", 1), Tuple::new(vec![Value::sym(n)]))
                }
            } else {
                let a = names[(rng() % 5) as usize];
                let b = names[(rng() % 5) as usize];
                let t = Tuple::new(vec![Value::sym(a), Value::sym(b)]);
                if r % 2 == 0 {
                    DeltaOp::Ins(Pred::new("e", 2), t)
                } else {
                    DeltaOp::Del(Pred::new("e", 2), t)
                }
            };
            db = step(&m, &db, op);
            assert_matches_fixpoint(&m, &p, &db);
        }
        assert_eq!(m.rebuilds(), 1, "churn maintained incrementally");
    }

    #[test]
    fn holds_probes_only_ground_materialized_atoms() {
        let (p, db) = setup(
            "base e/2. init e(a, b).
             path(X, Y) <- e(X, Y).
             path(X, Z) <- e(X, Y) * path(Y, Z).",
        );
        let m = Materializer::compile(&p).unwrap();
        let ground = Atom::new("path", vec![Term::sym("a"), Term::sym("b")]);
        assert_eq!(m.holds(&db, &ground), Some(true));
        let missing = Atom::new("path", vec![Term::sym("b"), Term::sym("a")]);
        assert_eq!(m.holds(&db, &missing), Some(false));
        let open = Atom::new("path", vec![Term::var(0), Term::sym("b")]);
        assert_eq!(m.holds(&db, &open), None);
        let base = Atom::new("e", vec![Term::sym("a"), Term::sym("b")]);
        assert_eq!(m.holds(&db, &base), None);
        assert_eq!(m.probes(), 2);
    }

    #[test]
    fn multi_op_deltas_maintain_in_one_pass() {
        let (p, db) = setup(
            "base e/2. init e(a, b).
             path(X, Y) <- e(X, Y).
             path(X, Z) <- e(X, Y) * path(Y, Z).",
        );
        let m = Materializer::compile(&p).unwrap();
        let _ = m.facts(&db, Pred::new("path", 2));
        let e = Pred::new("e", 2);
        let ops = vec![
            DeltaOp::Ins(e, tuple!("b", "c")),
            DeltaOp::Del(e, tuple!("a", "b")),
            DeltaOp::Ins(e, tuple!("c", "d")),
        ];
        let mut post = db.clone();
        for op in &ops {
            post = op.apply(&post).unwrap();
        }
        m.apply_ops(&db, &ops, &post);
        assert_matches_fixpoint(&m, &p, &post);
        assert_eq!(m.maintained_ops(), 3);
    }
}
