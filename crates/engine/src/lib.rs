//! # td-engine — the Transaction Datalog interpreter
//!
//! This crate executes TD programs. It provides:
//!
//! * [`Engine`] — the top-down, backtracking interpreter with interleaving
//!   search over concurrent branches, nested isolation, all-or-nothing
//!   rollback and per-execution statistics. This is the Rust counterpart of
//!   the Prolog prototype the paper's examples were validated on (\[55, 72\]).
//! * [`decider`] — an explicit-state, memoizing search over *ground
//!   configurations* `(process tree, database)`. For the decidable fragments
//!   of §4–§5 (sequential, nonrecursive, fully bounded TD) the configuration
//!   space is finite and this procedure decides executability outright,
//!   reporting the number of configurations explored — the quantity whose
//!   growth the complexity theorems describe.
//! * [`datalog`] — a classical bottom-up (semi-naive) Datalog evaluator,
//!   used as the paper's "plain Datalog" baseline (§6 remarks that
//!   insert-free TD queries are ordinary Datalog, where tabling/magic-set
//!   techniques apply).
//! * [`magic`] — the magic-sets query rewriting the paper's §6 mentions,
//!   layered on the bottom-up evaluator;
//! * [`tabling`] — §6's other named technique: call-pattern tabled
//!   resolution, which terminates on cyclic data where plain top-down
//!   resolution loops;
//! * [`entail`] — an executional-entailment checker: does
//!   `P, D₀ … Dₙ ⊨ φ` hold for an explicit state sequence? Used by the
//!   test suite to pin the semantics of `⊗`, `|`, and `⊙` independently of
//!   the interpreter's search order.

pub mod cache;
pub mod config;
pub mod datalog;
pub mod decider;
pub mod engine;
pub mod entail;
pub mod incremental;
mod kernel;
mod machine;
pub mod magic;
pub mod obs;
mod parallel;
pub mod tabling;
pub mod trace;
pub mod tree;

pub use cache::{CacheEntry, CachedAnswer, StateKey, SubgoalCache};
pub use config::{EngineConfig, EngineError, SearchBackend, Stats, Strategy};
pub use engine::{goal_num_vars, load_init, Engine, Outcome, Solution, Solutions};
pub use incremental::{Materializer, NotMaterializable};
pub use obs::{
    CacheTally, EventLog, GoalReport, LocalMetrics, MetricsRegistry, MetricsSnapshot, Observer,
    RunReport, ServeReport, StoreReport,
};
pub use trace::{ProbeOutcome, SpanPhase, Trace, TraceEvent};

#[cfg(test)]
mod tests {
    use super::*;
    use td_core::{Goal, Pred, Term};
    use td_db::{tuple, Database};
    use td_parser::parse_program;

    /// Parse, load init facts, and return (engine, db, goals).
    fn setup(src: &str) -> (Engine, Database, Vec<Goal>) {
        setup_cfg(src, EngineConfig::default())
    }

    fn setup_cfg(src: &str, cfg: EngineConfig) -> (Engine, Database, Vec<Goal>) {
        let parsed = parse_program(src).expect("test program parses");
        let db = Database::with_schema_of(&parsed.program);
        let db = load_init(&db, &parsed.init).expect("init loads");
        let goals = parsed.goals.iter().map(|g| g.goal.clone()).collect();
        (Engine::with_config(parsed.program, cfg), db, goals)
    }

    #[test]
    fn empty_goal_succeeds_without_change() {
        let (engine, db, _) = setup("base t/0.");
        let out = engine.solve(&Goal::True, &db).unwrap();
        assert!(out.is_success());
        let sol = out.solution().unwrap();
        assert!(sol.db.same_content(&db));
        assert!(sol.delta.is_empty());
    }

    #[test]
    fn fail_goal_fails() {
        let (engine, db, _) = setup("base t/0.");
        let out = engine.solve(&Goal::Fail, &db).unwrap();
        assert!(!out.is_success());
    }

    #[test]
    fn elementary_insert_and_query() {
        let (engine, db, goals) = setup("base t/1. ?- ins.t(5) * t(X).");
        let out = engine.solve(&goals[0], &db).unwrap();
        let sol = out.solution().expect("success");
        assert!(sol.db.contains(Pred::new("t", 1), &tuple!(5)));
        assert_eq!(sol.answer, vec![Term::int(5)]);
        assert_eq!(sol.delta.len(), 1);
    }

    #[test]
    fn query_on_empty_relation_fails() {
        let (engine, db, goals) = setup("base t/1. ?- t(X).");
        assert!(!engine.solve(&goals[0], &db).unwrap().is_success());
    }

    #[test]
    fn delete_then_query_fails() {
        let (engine, db, goals) = setup("base t/1. init t(1). ?- del.t(1) * t(1).");
        assert!(!engine.solve(&goals[0], &db).unwrap().is_success());
    }

    #[test]
    fn serial_order_matters() {
        // t(1) * ins.t(1) fails; ins.t(1) * t(1) succeeds.
        let (engine, db, goals) = setup("base t/1. ?- t(1) * ins.t(1). ?- ins.t(1) * t(1).");
        assert!(!engine.solve(&goals[0], &db).unwrap().is_success());
        assert!(engine.solve(&goals[1], &db).unwrap().is_success());
    }

    #[test]
    fn rule_unfolding_and_backtracking_over_rules() {
        let src = "
            base t/1.
            pick <- ins.t(1) * fail.
            pick <- ins.t(2).
            ?- pick.
        ";
        let (engine, db, goals) = setup(src);
        let sol = engine.solve(&goals[0], &db).unwrap();
        let s = sol.solution().expect("second rule succeeds");
        assert!(!s.db.contains(Pred::new("t", 1), &tuple!(1)));
        assert!(s.db.contains(Pred::new("t", 1), &tuple!(2)));
        // the failed first rule's insert must not appear in the delta
        assert_eq!(s.delta.len(), 1);
    }

    #[test]
    fn tuple_backtracking_finds_the_right_binding() {
        let src = "
            base num/1. base want/1.
            init num(1). init num(2). init num(3).
            init want(2).
            ?- num(X) * want(X).
        ";
        let (engine, db, goals) = setup(src);
        let sol = engine.solve(&goals[0], &db).unwrap();
        assert_eq!(sol.solution().unwrap().answer, vec![Term::int(2)]);
    }

    #[test]
    fn repeated_variable_in_query() {
        let src = "
            base e/2.
            init e(a, b). init e(c, c).
            ?- e(X, X).
        ";
        let (engine, db, goals) = setup(src);
        let sol = engine.solve(&goals[0], &db).unwrap();
        assert_eq!(sol.solution().unwrap().answer, vec![Term::sym("c")]);
    }

    #[test]
    fn all_solutions_enumerated() {
        let src = "base num/1. init num(1). init num(2). init num(3). ?- num(X).";
        let (engine, db, goals) = setup(src);
        let sols = engine.solutions(&goals[0], &db, 10).unwrap();
        let mut answers: Vec<i64> = sols
            .solutions
            .iter()
            .map(|s| s.answer[0].as_value().unwrap().as_int().unwrap())
            .collect();
        answers.sort_unstable();
        assert_eq!(answers, vec![1, 2, 3]);
    }

    #[test]
    fn solutions_respect_limit() {
        let src = "base num/1. init num(1). init num(2). init num(3). ?- num(X).";
        let (engine, db, goals) = setup(src);
        let sols = engine.solutions(&goals[0], &db, 2).unwrap();
        assert_eq!(sols.solutions.len(), 2);
    }

    #[test]
    fn builtins_compare_and_compute() {
        let src = "
            base bal/2.
            init bal(acct1, 30).
            withdraw(A, Amt) <- bal(A, B) * B >= Amt * del.bal(A, B)
                                * C is B - Amt * ins.bal(A, C).
            ?- withdraw(acct1, 10).
            ?- withdraw(acct1, 50).
        ";
        let (engine, db, goals) = setup(src);
        let ok = engine.solve(&goals[0], &db).unwrap();
        assert!(ok
            .solution()
            .unwrap()
            .db
            .contains(Pred::new("bal", 2), &tuple!("acct1", 20)));
        let too_much = engine.solve(&goals[1], &db).unwrap();
        assert!(!too_much.is_success());
    }

    #[test]
    fn concurrent_composition_interleaves_for_communication() {
        // The left process needs a tuple only the right process inserts:
        // executable only because | interleaves (communication through the
        // database — the paper's central workflow mechanism).
        let src = "
            base msg/0. base done/0.
            consumer <- msg * ins.done.
            producer <- ins.msg.
            ?- consumer | producer.
        ";
        let (engine, db, goals) = setup(src);
        let out = engine.solve(&goals[0], &db).unwrap();
        assert!(out.is_success(), "scheduler must find producer-first order");
        assert!(out
            .solution()
            .unwrap()
            .db
            .contains(Pred::new("done", 0), &td_db::Tuple::unit()));
    }

    #[test]
    fn sequential_composition_does_not_communicate_backward() {
        // Same processes composed serially in the wrong order fail.
        let src = "
            base msg/0. base done/0.
            consumer <- msg * ins.done.
            producer <- ins.msg.
            ?- consumer * producer.
        ";
        let (engine, db, goals) = setup(src);
        assert!(!engine.solve(&goals[0], &db).unwrap().is_success());
    }

    #[test]
    fn three_way_rendezvous() {
        let src = "
            base a/0. base b/0. base c/0.
            p1 <- ins.a * b * c.
            p2 <- a * ins.b * c.
            p3 <- a * b * ins.c.
            ?- p1 | p2 | p3.
        ";
        let (engine, db, goals) = setup(src);
        assert!(engine.solve(&goals[0], &db).unwrap().is_success());
    }

    #[test]
    fn isolation_blocks_interleaving() {
        // Without iso, the goal can interleave: the right branch observes
        // the flag mid-flight. With iso around the left, the intermediate
        // state is invisible, so the goal fails.
        let src = "
            base flag/0. base saw/0.
            right <- flag * ins.saw.
            ?- (ins.flag * del.flag) | right.
            ?- iso { ins.flag * del.flag } | right.
        ";
        let (engine, db, goals) = setup(src);
        assert!(
            engine.solve(&goals[0], &db).unwrap().is_success(),
            "unisolated: right can observe the flag mid-flight"
        );
        assert!(
            !engine.solve(&goals[1], &db).unwrap().is_success(),
            "isolated: the intermediate state is invisible"
        );
    }

    #[test]
    fn isolation_is_transparent_when_alone() {
        let src = "base t/1. ?- iso { ins.t(1) * t(X) * del.t(X) * ins.t(2) }.";
        let (engine, db, goals) = setup(src);
        let sol = engine.solve(&goals[0], &db).unwrap();
        let s = sol.solution().unwrap();
        assert!(s.db.contains(Pred::new("t", 1), &tuple!(2)));
        assert!(!s.db.contains(Pred::new("t", 1), &tuple!(1)));
    }

    #[test]
    fn isolation_backtracks_into_the_block() {
        // The first solution of the iso block conflicts with the
        // continuation; the engine must pull the next solution out of the
        // isolated sub-execution.
        let src = "
            base num/1. base out/1.
            init num(1). init num(2).
            pickit <- num(X) * ins.out(X).
            ?- iso { pickit } * out(2).
        ";
        let (engine, db, goals) = setup(src);
        let sol = engine.solve(&goals[0], &db).unwrap();
        assert!(sol.is_success(), "must retry iso with X=2");
        assert!(sol
            .solution()
            .unwrap()
            .db
            .contains(Pred::new("out", 1), &tuple!(2)));
    }

    #[test]
    fn nested_isolation() {
        let src = "base t/1. ?- iso { ins.t(1) * iso { ins.t(2) } * ins.t(3) }.";
        let (engine, db, goals) = setup(src);
        let sol = engine.solve(&goals[0], &db).unwrap();
        assert_eq!(sol.solution().unwrap().db.total_tuples(), 3);
    }

    #[test]
    fn choice_goal_tries_branches_in_order() {
        let src = "base t/1. ?- { fail or ins.t(7) }.";
        let (engine, db, goals) = setup(src);
        let sol = engine.solve(&goals[0], &db).unwrap();
        assert!(sol
            .solution()
            .unwrap()
            .db
            .contains(Pred::new("t", 1), &tuple!(7)));
    }

    #[test]
    fn negation_as_absence() {
        let src = "
            base busy/1.
            init busy(a1).
            grab(A) <- not busy(A) * ins.busy(A).
            ?- grab(a1).
            ?- grab(a2).
        ";
        let (engine, db, goals) = setup(src);
        assert!(!engine.solve(&goals[0], &db).unwrap().is_success());
        assert!(engine.solve(&goals[1], &db).unwrap().is_success());
    }

    #[test]
    fn recursion_terminates_on_condition() {
        // Tail-recursive countdown: iteration via recursion (the paper's
        // repeated-protocol idiom).
        let src = "
            base n/1.
            init n(5).
            down <- n(0).
            down <- n(X) * X > 0 * del.n(X) * Y is X - 1 * ins.n(Y) * down.
            ?- down.
        ";
        let (engine, db, goals) = setup(src);
        let sol = engine.solve(&goals[0], &db).unwrap();
        let s = sol.solution().unwrap();
        assert!(s.db.contains(Pred::new("n", 1), &tuple!(0)));
        assert_eq!(s.db.relation(Pred::new("n", 1)).unwrap().len(), 1);
    }

    #[test]
    fn step_budget_stops_divergence() {
        // loop <- loop: diverges; the budget must stop it with an error,
        // not hang (full TD is RE-complete, so a budget is the only
        // guarantee of termination).
        let src = "loop <- loop. ?- loop.";
        let parsed = parse_program(src).unwrap();
        let db = Database::with_schema_of(&parsed.program);
        let engine =
            Engine::with_config(parsed.program, EngineConfig::default().with_max_steps(1000));
        let err = engine.solve(&parsed.goals[0].goal, &db).unwrap_err();
        assert!(matches!(err, EngineError::StepBudget { .. }));
    }

    #[test]
    fn instantiation_fault_on_unbound_update() {
        let src = "base t/1. base p/1. init p(1). bad(X) <- p(X) * ins.t(Y). ?- bad(1).";
        let (engine, db, goals) = setup(src);
        let err = engine.solve(&goals[0], &db);
        assert!(
            matches!(err, Err(EngineError::Instantiation { .. })),
            "got {err:?}"
        );
    }

    #[test]
    fn type_fault_on_symbol_comparison() {
        let (engine, db, goals) = setup("base t/0. ?- abc < 3.");
        let err = engine.solve(&goals[0], &db).unwrap_err();
        assert!(matches!(err, EngineError::Type { .. }));
    }

    #[test]
    fn overflow_is_detected() {
        let src = format!("base t/1. ?- X is {} + 1 * ins.t(X).", i64::MAX);
        let parsed = parse_program(&src).unwrap();
        let db = Database::with_schema_of(&parsed.program);
        let engine = Engine::new(parsed.program.clone());
        let err = engine.solve(&parsed.goals[0].goal, &db).unwrap_err();
        assert!(matches!(err, EngineError::Overflow { .. }));
    }

    #[test]
    fn variables_shared_across_concurrent_branches() {
        // r(X) <- (p(X) | q(X)): one X, bound by whichever branch queries
        // first, constraining the other.
        let src = "
            base p/1. base q/1. base out/1.
            init p(1). init p(2). init q(2).
            r(X) <- (p(X) | q(X)) * ins.out(X).
            ?- r(X).
        ";
        let (engine, db, goals) = setup(src);
        let sol = engine.solve(&goals[0], &db).unwrap();
        assert_eq!(sol.solution().unwrap().answer, vec![Term::int(2)]);
    }

    #[test]
    fn deleted_tuple_not_visible_later_in_seq() {
        let src = "
            base t/1. init t(1).
            ?- del.t(1) * ins.t(2) * t(X).
        ";
        let (engine, db, goals) = setup(src);
        let sol = engine.solve(&goals[0], &db).unwrap();
        assert_eq!(sol.solution().unwrap().answer, vec![Term::int(2)]);
    }

    #[test]
    fn round_robin_runs_confluent_workflows() {
        let src = "
            base done/1.
            w(W) <- ins.done(W).
            ?- w(a) | w(b) | w(c).
        ";
        let (engine, db, goals) = setup_cfg(
            src,
            EngineConfig::default().with_strategy(Strategy::RoundRobin),
        );
        let sol = engine.solve(&goals[0], &db).unwrap();
        assert_eq!(sol.solution().unwrap().db.total_tuples(), 3);
    }

    #[test]
    fn exhaustive_random_is_complete() {
        // The rendezvous needs a specific schedule; the randomized strategy
        // must still find it (it backtracks over schedules).
        let src = "
            base msg/0. base done/0.
            consumer <- msg * ins.done.
            producer <- ins.msg.
            ?- consumer | producer.
        ";
        for seed in 0..5 {
            let (engine, db, goals) = setup_cfg(
                src,
                EngineConfig::default().with_strategy(Strategy::ExhaustiveRandom(seed)),
            );
            assert!(
                engine.solve(&goals[0], &db).unwrap().is_success(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn leftmost_strategy_misses_right_first_schedules() {
        // Leftmost serializes |: consumer runs first and fails; without
        // schedule backtracking the goal fails. Documents the incompleteness
        // trade-off.
        let src = "
            base msg/0. base done/0.
            consumer <- msg * ins.done.
            producer <- ins.msg.
            ?- consumer | producer.
        ";
        let (engine, db, goals) = setup_cfg(
            src,
            EngineConfig::default().with_strategy(Strategy::Leftmost),
        );
        assert!(!engine.solve(&goals[0], &db).unwrap().is_success());
    }

    #[test]
    fn delta_records_successful_path_only() {
        let src = "
            base t/1.
            go <- ins.t(1) * fail.
            go <- ins.t(2) * ins.t(3).
            ?- go.
        ";
        let (engine, db, goals) = setup(src);
        let sol = engine.solve(&goals[0], &db).unwrap();
        let delta = &sol.solution().unwrap().delta;
        assert_eq!(delta.len(), 2);
        let rendered = delta.to_string();
        assert!(rendered.contains("ins.t(2)"));
        assert!(rendered.contains("ins.t(3)"));
        assert!(!rendered.contains("ins.t(1)"));
    }

    #[test]
    fn stats_are_populated() {
        let src = "base t/1. ?- ins.t(1) * t(X) * del.t(X).";
        let (engine, db, goals) = setup(src);
        let sol = engine.solve(&goals[0], &db).unwrap();
        let stats = sol.stats();
        assert!(stats.steps >= 3);
        assert_eq!(stats.db_ops, 2);
    }

    #[test]
    fn goal_num_vars_counts_dense_ids() {
        let g = Goal::atom("p", vec![Term::var(0), Term::var(2)]);
        assert_eq!(goal_num_vars(&g), 3);
        assert_eq!(goal_num_vars(&Goal::True), 0);
    }
}

#[cfg(test)]
mod stats_tests {
    use super::*;
    use td_db::Database;
    use td_parser::parse_program;

    #[test]
    fn memo_hits_are_counted() {
        // Two concurrent iterating instances whose not-yet-conclusive guard
        // keeps failing: the refuted configurations recur across
        // interleavings (the iterated-protocol shape of [26]).
        let src = "
            base quality/2. base result/2. base mapped/1.
            init quality(a, 0). init quality(b, 0).
            protocol(W) <- quality(W, Q) * Q >= 3 * ins.mapped(W).
            protocol(W) <- quality(W, Q) * Q < 3 * del.quality(W, Q)
                           * Q2 is Q + 1 * ins.quality(W, Q2)
                           * ins.result(W, Q2) * protocol(W).
            ?- protocol(a) | protocol(b).
        ";
        let parsed = parse_program(src).unwrap();
        let db = load_init(&Database::with_schema_of(&parsed.program), &parsed.init).unwrap();
        let engine = Engine::new(parsed.program.clone());
        let out = engine.solve(&parsed.goals[0].goal, &db).unwrap();
        assert!(out.is_success());
        assert!(out.stats().memo_hits > 0, "{}", out.stats());
    }

    #[test]
    fn peak_processes_reflects_runtime_spawning() {
        // Example 3.2's spawner: each delivered item adds a live process.
        let src = "
            base item/1. base done/1.
            wf(W) <- ins.done(W).
            sim <- item(W) * del.item(W) * (wf(W) | sim).
            sim <- ().
            env <- ins.item(w1) * ins.item(w2) * ins.item(w3) * ins.item(w4).
            ?- env * sim.
        ";
        let parsed = parse_program(src).unwrap();
        let db = Database::with_schema_of(&parsed.program);
        let engine = Engine::new(parsed.program.clone());
        let out = engine.solve(&parsed.goals[0].goal, &db).unwrap();
        assert!(out.is_success());
        // At some point several spawned workflows plus the spawner are
        // simultaneously live.
        assert!(out.stats().peak_processes >= 2, "{}", out.stats());
    }

    #[test]
    fn subgoal_cache_hits_on_iterated_protocol() {
        // Two concurrent instances of the same iterating protocol: the
        // sole-frontier ground calls and the identical iso-free recursion
        // recur at identical (goal, digest) states across interleavings, so
        // a warm second run answers from the cache.
        let src = "
            base quality/2. base result/2. base mapped/1.
            init quality(a, 0). init quality(b, 0).
            protocol(W) <- quality(W, Q) * Q >= 3 * ins.mapped(W).
            protocol(W) <- quality(W, Q) * Q < 3 * del.quality(W, Q)
                           * Q2 is Q + 1 * ins.quality(W, Q2)
                           * ins.result(W, Q2) * protocol(W).
            ?- iso { protocol(a) } * iso { protocol(b) }.
        ";
        let parsed = parse_program(src).unwrap();
        let db = load_init(&Database::with_schema_of(&parsed.program), &parsed.init).unwrap();
        let cfg = EngineConfig::default().with_subgoal_cache();
        let engine = Engine::with_config(parsed.program.clone(), cfg);
        let cold = engine.solve(&parsed.goals[0].goal, &db).unwrap();
        assert!(cold.is_success());
        let warm = engine.solve(&parsed.goals[0].goal, &db).unwrap();
        assert!(warm.is_success());
        assert!(
            warm.stats().cache_hits > 0,
            "warm run must replay cached answers: {}",
            warm.stats()
        );
        let cache = engine.subgoal_cache().expect("cache enabled");
        assert!(cache.hits() > 0);
        assert!(!cache.is_empty());
    }

    #[test]
    fn cached_and_uncached_agree_on_witness() {
        let src = "
            base item/1. base log/1.
            init item(1). init item(2). init item(3).
            take(X) <- item(X) * del.item(X) * ins.log(X).
            ?- iso { take(X) } * iso { take(Y) }.
        ";
        let parsed = parse_program(src).unwrap();
        let db = load_init(&Database::with_schema_of(&parsed.program), &parsed.init).unwrap();
        let plain = Engine::new(parsed.program.clone());
        let cached = Engine::with_config(
            parsed.program.clone(),
            EngineConfig::default().with_subgoal_cache(),
        );
        let a = plain.solve(&parsed.goals[0].goal, &db).unwrap();
        let b = cached.solve(&parsed.goals[0].goal, &db).unwrap();
        let (sa, sb) = (a.solution().unwrap(), b.solution().unwrap());
        assert_eq!(sa.answer, sb.answer);
        assert_eq!(sa.delta.ops(), sb.delta.ops());
        assert!(sa.db.same_content(&sb.db));
    }

    #[test]
    fn subgoal_cache_is_inert_under_tracing() {
        // Tracing disables the cache (a replayed macro-step has no
        // elementary trace events), so the counters must stay zero.
        let src = "base t/1. ?- iso { ins.t(1) }.";
        let parsed = parse_program(src).unwrap();
        let db = Database::with_schema_of(&parsed.program);
        let cfg = EngineConfig::default().with_subgoal_cache().with_trace();
        let engine = Engine::with_config(parsed.program.clone(), cfg);
        let out = engine.solve(&parsed.goals[0].goal, &db).unwrap();
        assert!(out.is_success());
        assert_eq!(out.stats().cache_hits + out.stats().cache_misses, 0);
        assert!(!out.solution().unwrap().trace.is_empty());
    }

    #[test]
    fn memo_can_be_disabled() {
        let src = "base t/0. ?- ins.t * t.";
        let parsed = parse_program(src).unwrap();
        let db = Database::with_schema_of(&parsed.program);
        let cfg = EngineConfig {
            memo_failures: false,
            ..EngineConfig::default()
        };
        let engine = Engine::with_config(parsed.program.clone(), cfg);
        let out = engine.solve(&parsed.goals[0].goal, &db).unwrap();
        assert!(out.is_success());
        assert_eq!(out.stats().memo_hits, 0);
    }
}

#[cfg(test)]
mod error_path_tests {
    use super::*;
    use td_core::{Atom, Goal, Term};
    use td_db::Database;

    #[test]
    fn load_init_rejects_non_ground_atoms() {
        let err = load_init(&Database::new(), &[Atom::new("p", vec![Term::var(0)])]).unwrap_err();
        assert!(matches!(err, EngineError::Instantiation { .. }));
    }

    #[test]
    fn arity_mismatch_reaches_the_db_layer_as_a_fatal_error() {
        // The engine does not re-validate API-constructed goals; a tuple of
        // the wrong width must surface as a fatal Db error, not a failure.
        let program = td_core::Program::builder()
            .base_pred("p", 2)
            .build()
            .unwrap();
        let db = Database::with_schema_of(&program);
        let engine = Engine::new(program);
        // ins.p(1) against p/2: the atom's pred is p/1 — auto-declared as a
        // separate relation, so this succeeds (predicates are name+arity)...
        let ok = engine
            .solve(&Goal::ins("p", vec![Term::int(1)]), &db)
            .unwrap();
        assert!(ok.is_success(), "p/1 and p/2 are distinct predicates");
        // ...whereas a hand-built atom lying about its own arity hits the
        // storage check.
        let lying = Goal::Ins(Atom {
            pred: td_core::Pred::new("p", 2),
            args: vec![Term::int(1)],
        });
        let err = engine.solve(&lying, &db).unwrap_err();
        assert!(matches!(err, EngineError::Db(_)), "{err:?}");
    }

    #[test]
    fn stack_budget_is_enforced() {
        // Deep choicepoint accumulation hits the stack budget before the
        // step budget when configured tightly.
        let parsed = td_parser::parse_program(
            "base t/1.
             gen <- { ins.t(1) or ins.t(2) } * gen.
             ?- gen.",
        )
        .unwrap();
        let db = Database::with_schema_of(&parsed.program);
        let cfg = EngineConfig {
            max_stack: 50,
            max_steps: 1_000_000,
            memo_failures: false, // keep the search growing
            ..EngineConfig::default()
        };
        let engine = Engine::with_config(parsed.program.clone(), cfg);
        let err = engine.solve(&parsed.goals[0].goal, &db).unwrap_err();
        assert!(matches!(err, EngineError::StackBudget { .. }), "{err:?}");
    }
}
