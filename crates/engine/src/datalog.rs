//! Classical bottom-up Datalog evaluation (semi-naive).
//!
//! §6 of the paper observes that the update-free core of TD *is* classical
//! Datalog — queries with a least-fixpoint semantics — "so well-known
//! optimization techniques (such as magic sets or tabling) can be applied".
//! This module provides that classical engine: a semi-naive bottom-up
//! evaluator over the same `td-core` rule representation, used
//!
//! * as the baseline in experiment E11 (TD top-down execution vs. bottom-up
//!   evaluation on reachability workloads), and
//! * as a fast oracle for update-free goals in tests.
//!
//! A program is *Datalog-evaluable* if every rule body is a serial
//! composition of atoms, builtins and base-relation absence tests
//! (`not p(t̄)`) — no updates, no `|`, no `iso`, no `or`. Negation needs no
//! stratification here because the language restricts `not` to *base*
//! relations (extensional data), which no rule can derive into.
//! [`is_datalog`] checks this.

use std::collections::{HashMap, HashSet};
use td_core::goal::Builtin;
use td_core::unify::unify_terms;
use td_core::{Atom, Bindings, Goal, Pred, Program, Rule, Term, Value};
use td_db::{Database, Tuple};

/// Why a program is not Datalog-evaluable.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NotDatalog {
    pub reason: String,
}

impl std::fmt::Display for NotDatalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "not a Datalog program: {}", self.reason)
    }
}

impl std::error::Error for NotDatalog {}

/// One body literal of a flattened Datalog rule. Shared with the
/// incremental materialization circuit (`crate::incremental`), which
/// compiles the same flattened form into delta-join plans.
#[derive(Clone, Debug)]
pub(crate) enum Lit {
    Atom(Atom),
    /// Absence test on a base relation; all arguments must be bound by the
    /// literals to its left.
    NegAtom(Atom),
    Builtin(Builtin, Vec<Term>),
}

/// A rule flattened to `head <- lit₁, …, litₙ`.
#[derive(Clone, Debug)]
pub(crate) struct FlatRule {
    pub(crate) head: Atom,
    pub(crate) body: Vec<Lit>,
    pub(crate) num_vars: u32,
}

/// Check that every rule of `program` is Datalog-evaluable.
pub fn is_datalog(program: &Program) -> Result<(), NotDatalog> {
    for r in program.rules() {
        flatten_rule(r)?;
    }
    Ok(())
}

pub(crate) fn flatten_rule(rule: &Rule) -> Result<FlatRule, NotDatalog> {
    let mut body = Vec::new();
    flatten_goal(&rule.body, &mut body)?;
    Ok(FlatRule {
        head: rule.head.clone(),
        body,
        num_vars: rule.num_vars(),
    })
}

fn flatten_goal(goal: &Goal, out: &mut Vec<Lit>) -> Result<(), NotDatalog> {
    match goal {
        Goal::True => Ok(()),
        Goal::Atom(a) => {
            out.push(Lit::Atom(a.clone()));
            Ok(())
        }
        Goal::NotAtom(a) => {
            out.push(Lit::NegAtom(a.clone()));
            Ok(())
        }
        Goal::Builtin(b, ts) => {
            out.push(Lit::Builtin(*b, ts.clone()));
            Ok(())
        }
        Goal::Seq(gs) => {
            for g in gs {
                flatten_goal(g, out)?;
            }
            Ok(())
        }
        other => Err(NotDatalog {
            reason: format!("body contains `{other}` (updates, |, iso, or are not Datalog)"),
        }),
    }
}

/// The least fixpoint: every derivable fact of every derived predicate.
#[derive(Clone, Debug, Default)]
pub struct Fixpoint {
    facts: HashMap<Pred, HashSet<Tuple>>,
    /// Semi-naive iterations until convergence.
    pub iterations: usize,
    /// Facts derived (including duplicates suppressed).
    pub derivations: u64,
}

impl Fixpoint {
    /// All facts of `pred`.
    pub fn facts_of(&self, pred: Pred) -> impl Iterator<Item = &Tuple> {
        self.facts.get(&pred).into_iter().flatten()
    }

    /// Does the ground atom hold in the fixpoint?
    pub fn holds(&self, atom: &Atom) -> bool {
        match atom.ground_args() {
            Some(vals) => self
                .facts
                .get(&atom.pred)
                .is_some_and(|s| s.contains(&Tuple::new(vals))),
            None => false,
        }
    }

    /// Total number of derived facts.
    pub fn len(&self) -> usize {
        self.facts.values().map(HashSet::len).sum()
    }

    /// True if no derived facts exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Compute the least fixpoint of `program` over `db` by semi-naive
/// iteration.
pub fn evaluate(program: &Program, db: &Database) -> Result<Fixpoint, NotDatalog> {
    let rules: Vec<FlatRule> = program
        .rules()
        .iter()
        .map(flatten_rule)
        .collect::<Result<_, _>>()?;

    let mut fix = Fixpoint::default();
    // delta = facts new in the previous round.
    let mut delta: HashMap<Pred, HashSet<Tuple>>;

    // Round 0: rules evaluated with all derived atoms ranging over the
    // (empty) total — only rules whose derived prefix is empty fire.
    let mut first = eval_round(&rules, program, db, &fix.facts, None, &mut fix.derivations);
    loop {
        fix.iterations += 1;
        let mut new_delta: HashMap<Pred, HashSet<Tuple>> = HashMap::new();
        for (pred, tuples) in first.drain() {
            for t in tuples {
                let entry = fix.facts.entry(pred).or_default();
                if entry.insert(t.clone()) {
                    new_delta.entry(pred).or_default().insert(t);
                }
            }
        }
        if new_delta.is_empty() {
            break;
        }
        delta = new_delta;
        first = eval_round(
            &rules,
            program,
            db,
            &fix.facts,
            Some(&delta),
            &mut fix.derivations,
        );
    }
    Ok(fix)
}

/// All answers to a (possibly non-ground) atom: tuples of the predicate
/// matching the atom's bound positions, drawn from the fixpoint for derived
/// predicates or the database for base predicates.
pub fn query(program: &Program, db: &Database, atom: &Atom) -> Result<Vec<Tuple>, NotDatalog> {
    let pattern: Vec<Option<Value>> = atom.args.iter().map(|t| t.as_value()).collect();
    if program.is_base(atom.pred) {
        let mut out = db
            .relation(atom.pred)
            .map(|r| r.select(&pattern))
            .unwrap_or_default();
        out.sort();
        return Ok(out);
    }
    let fix = evaluate(program, db)?;
    let mut out: Vec<Tuple> = fix
        .facts_of(atom.pred)
        .filter(|t| t.matches(&pattern))
        .cloned()
        .collect();
    out.sort();
    Ok(out)
}

/// Evaluate every rule once. With `delta`, semi-naive: at least one derived
/// body atom must come from `delta`.
fn eval_round(
    rules: &[FlatRule],
    program: &Program,
    db: &Database,
    total: &HashMap<Pred, HashSet<Tuple>>,
    delta: Option<&HashMap<Pred, HashSet<Tuple>>>,
    derivations: &mut u64,
) -> HashMap<Pred, HashSet<Tuple>> {
    let mut out: HashMap<Pred, HashSet<Tuple>> = HashMap::new();
    for rule in rules {
        let derived_positions: Vec<usize> = rule
            .body
            .iter()
            .enumerate()
            .filter_map(|(i, l)| match l {
                Lit::Atom(a) if program.is_derived(a.pred) => Some(i),
                _ => None,
            })
            .collect();
        match delta {
            None => {
                eval_rule(rule, program, db, total, None, &mut out, derivations);
            }
            Some(d) => {
                if derived_positions.is_empty() {
                    // Already produced in round 0; nothing new can arise.
                    continue;
                }
                for &pos in &derived_positions {
                    eval_rule(
                        rule,
                        program,
                        db,
                        total,
                        Some((pos, d)),
                        &mut out,
                        derivations,
                    );
                }
            }
        }
    }
    out
}

/// Nested-loop join over the body, in order; `delta_at` forces one position
/// to range over the delta.
fn eval_rule(
    rule: &FlatRule,
    program: &Program,
    db: &Database,
    total: &HashMap<Pred, HashSet<Tuple>>,
    delta_at: Option<(usize, &HashMap<Pred, HashSet<Tuple>>)>,
    out: &mut HashMap<Pred, HashSet<Tuple>>,
    derivations: &mut u64,
) {
    let mut bindings = Bindings::new();
    bindings.alloc(rule.num_vars);
    join(
        rule,
        0,
        program,
        db,
        total,
        delta_at,
        &mut bindings,
        out,
        derivations,
    );
}

#[allow(clippy::too_many_arguments)]
fn join(
    rule: &FlatRule,
    idx: usize,
    program: &Program,
    db: &Database,
    total: &HashMap<Pred, HashSet<Tuple>>,
    delta_at: Option<(usize, &HashMap<Pred, HashSet<Tuple>>)>,
    bindings: &mut Bindings,
    out: &mut HashMap<Pred, HashSet<Tuple>>,
    derivations: &mut u64,
) {
    if idx == rule.body.len() {
        // Emit the head fact.
        let values: Option<Vec<Value>> = rule
            .head
            .args
            .iter()
            .map(|t| bindings.value_of(*t))
            .collect();
        if let Some(values) = values {
            *derivations += 1;
            out.entry(rule.head.pred)
                .or_default()
                .insert(Tuple::new(values));
        }
        // Unbound head vars: the rule is range-restricted, so this only
        // happens when a builtin failed to bind; skip silently.
        return;
    }
    match &rule.body[idx] {
        Lit::Atom(atom) => {
            let resolved: Vec<Term> = atom.args.iter().map(|t| bindings.resolve(*t)).collect();
            let candidates: Vec<Tuple> = if program.is_base(atom.pred) {
                let pattern: Vec<Option<Value>> = resolved.iter().map(|t| t.as_value()).collect();
                db.relation(atom.pred)
                    .map(|r| r.select(&pattern))
                    .unwrap_or_default()
            } else {
                let source = match delta_at {
                    Some((pos, d)) if pos == idx => d.get(&atom.pred),
                    _ => total.get(&atom.pred),
                };
                source
                    .map(|s| s.iter().cloned().collect())
                    .unwrap_or_default()
            };
            for t in candidates {
                let mark = bindings.mark();
                let ok = resolved
                    .iter()
                    .zip(t.values())
                    .all(|(a, v)| unify_terms(bindings, *a, Term::Val(*v)));
                if ok {
                    join(
                        rule,
                        idx + 1,
                        program,
                        db,
                        total,
                        delta_at,
                        bindings,
                        out,
                        derivations,
                    );
                }
                bindings.undo_to(mark);
            }
        }
        Lit::NegAtom(atom) => {
            // All args must be bound here (left-to-right safety); an
            // unresolved variable means the rule is not evaluable in this
            // order — treat as no match, like a failing filter.
            let values: Option<Vec<Value>> =
                atom.args.iter().map(|t| bindings.value_of(*t)).collect();
            if let Some(values) = values {
                let absent = !db.contains(atom.pred, &Tuple::new(values));
                if absent {
                    join(
                        rule,
                        idx + 1,
                        program,
                        db,
                        total,
                        delta_at,
                        bindings,
                        out,
                        derivations,
                    );
                }
            }
        }
        Lit::Builtin(op, terms) => {
            let mark = bindings.mark();
            // Builtins in the bottom-up setting are filters/functions; an
            // instantiation fault means the rule isn't evaluable in this
            // order — treat as no match (it would be rejected top-down too).
            let ok = matches!(crate::kernel::eval_builtin(bindings, *op, terms), Ok(true));
            if ok {
                join(
                    rule,
                    idx + 1,
                    program,
                    db,
                    total,
                    delta_at,
                    bindings,
                    out,
                    derivations,
                );
            }
            bindings.undo_to(mark);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::load_init;
    use td_db::tuple;
    use td_parser::parse_program;

    fn setup(src: &str) -> (Program, Database) {
        let parsed = parse_program(src).expect("parses");
        let db = Database::with_schema_of(&parsed.program);
        let db = load_init(&db, &parsed.init).expect("init");
        (parsed.program, db)
    }

    #[test]
    fn transitive_closure() {
        let (p, db) = setup(
            "base e/2.
             init e(a, b). init e(b, c). init e(c, d).
             path(X, Y) <- e(X, Y).
             path(X, Z) <- e(X, Y) * path(Y, Z).",
        );
        let fix = evaluate(&p, &db).unwrap();
        let path = Pred::new("path", 2);
        assert!(fix.holds(&Atom::new("path", vec![Term::sym("a"), Term::sym("d")])));
        assert_eq!(fix.facts_of(path).count(), 6);
    }

    #[test]
    fn query_filters_by_pattern() {
        let (p, db) = setup(
            "base e/2.
             init e(a, b). init e(b, c).
             path(X, Y) <- e(X, Y).
             path(X, Z) <- e(X, Y) * path(Y, Z).",
        );
        let ans = query(
            &p,
            &db,
            &Atom::new("path", vec![Term::sym("a"), Term::var(0)]),
        )
        .unwrap();
        assert_eq!(ans.len(), 2);
        let base = query(&p, &db, &Atom::new("e", vec![Term::var(0), Term::var(1)])).unwrap();
        assert_eq!(base.len(), 2);
    }

    #[test]
    fn builtins_as_filters_and_functions() {
        let (p, db) = setup(
            "base n/1.
             init n(1). init n(2). init n(3).
             big(X) <- n(X) * X > 1.
             double(Y) <- n(X) * Y is X + X.",
        );
        let fix = evaluate(&p, &db).unwrap();
        assert_eq!(fix.facts_of(Pred::new("big", 1)).count(), 2);
        let mut doubles: Vec<Tuple> = fix.facts_of(Pred::new("double", 1)).cloned().collect();
        doubles.sort();
        assert_eq!(doubles, vec![tuple!(2), tuple!(4), tuple!(6)]);
    }

    #[test]
    fn mutual_recursion_converges() {
        let (p, db) = setup(
            "base start/1. base e/2.
             init start(a). init e(a, b). init e(b, a).
             even(X) <- start(X).
             even(X) <- odd(Y) * e(Y, X).
             odd(X) <- even(Y) * e(Y, X).",
        );
        let fix = evaluate(&p, &db).unwrap();
        assert!(fix.holds(&Atom::new("even", vec![Term::sym("a")])));
        assert!(fix.holds(&Atom::new("odd", vec![Term::sym("b")])));
        assert!(fix.holds(&Atom::new("even", vec![Term::sym("a")])));
        assert!(fix.iterations < 10);
    }

    #[test]
    fn non_datalog_rules_rejected() {
        let (p, _) = setup("base t/0. r <- ins.t.");
        assert!(is_datalog(&p).is_err());
        let (p, _) = setup("base a/0. base b/0. r <- a | b.");
        assert!(is_datalog(&p).is_err());
        let (p, _) = setup("base a/0. r <- iso { a }.");
        assert!(is_datalog(&p).is_err());
    }

    #[test]
    fn pure_query_programs_accepted() {
        let (p, _) = setup("base e/2. path(X, Y) <- e(X, Y). path(X, Z) <- e(X, Y) * path(Y, Z).");
        assert!(is_datalog(&p).is_ok());
    }

    #[test]
    fn empty_program_fixpoint_is_empty() {
        let (p, db) = setup("base e/2.");
        let fix = evaluate(&p, &db).unwrap();
        assert!(fix.is_empty());
    }

    #[test]
    fn agreement_with_interpreter_on_queries() {
        // A pure-query goal must succeed top-down iff the fact is in the
        // bottom-up fixpoint.
        let src = "base e/2.
             init e(a, b). init e(b, c). init e(c, d).
             path(X, Y) <- e(X, Y).
             path(X, Z) <- e(X, Y) * path(Y, Z).";
        let (p, db) = setup(src);
        let fix = evaluate(&p, &db).unwrap();
        let engine = crate::Engine::new(p.clone());
        for x in ["a", "b", "c", "d"] {
            for y in ["a", "b", "c", "d"] {
                let atom = Atom::new("path", vec![Term::sym(x), Term::sym(y)]);
                let goal = Goal::Atom(atom.clone());
                let eng = engine.executable(&goal, &db).unwrap();
                assert_eq!(eng, fix.holds(&atom), "path({x},{y})");
            }
        }
    }
}

#[cfg(test)]
mod negation_tests {
    use super::*;
    use crate::engine::load_init;
    use td_parser::parse_program;

    fn setup(src: &str) -> (Program, Database) {
        let parsed = parse_program(src).unwrap();
        let db = Database::with_schema_of(&parsed.program);
        let db = load_init(&db, &parsed.init).unwrap();
        (parsed.program, db)
    }

    #[test]
    fn absence_tests_filter_bottom_up() {
        let (p, db) = setup(
            "base node/1. base broken/1.
             init node(a). init node(b). init node(c).
             init broken(b).
             healthy(X) <- node(X) * not broken(X).",
        );
        let fix = evaluate(&p, &db).unwrap();
        let mut names: Vec<String> = fix
            .facts_of(Pred::new("healthy", 1))
            .map(|t| t.to_string())
            .collect();
        names.sort();
        assert_eq!(names, vec!["(a)", "(c)"]);
    }

    #[test]
    fn negation_inside_recursion() {
        // Reachability avoiding blocked nodes.
        let (p, db) = setup(
            "base e/2. base blocked/1.
             init e(a, b). init e(b, c). init e(c, d).
             init blocked(c).
             reach(X) <- e(a, X) * not blocked(X).
             reach(Y) <- reach(X) * e(X, Y) * not blocked(Y).",
        );
        let fix = evaluate(&p, &db).unwrap();
        assert!(fix.holds(&Atom::new("reach", vec![Term::sym("b")])));
        assert!(!fix.holds(&Atom::new("reach", vec![Term::sym("c")])));
        assert!(
            !fix.holds(&Atom::new("reach", vec![Term::sym("d")])),
            "d is only reachable through blocked c"
        );
    }

    #[test]
    fn tabled_and_bottom_up_agree_with_negation() {
        let src = "base e/2. base blocked/1.
             init e(a, b). init e(b, c). init e(b, a).
             init blocked(c).
             reach(X) <- e(a, X) * not blocked(X).
             reach(Y) <- reach(X) * e(X, Y) * not blocked(Y).";
        let (p, db) = setup(src);
        let q = Atom::new("reach", vec![Term::var(0)]);
        let naive = query(&p, &db, &q).unwrap();
        let (tabled, _) = crate::tabling::query_tabled(&p, &db, &q).unwrap();
        assert_eq!(naive, tabled);
        let (magic, _) = crate::magic::answer(&p, &db, &q).unwrap();
        assert_eq!(naive, magic);
    }

    #[test]
    fn engine_agrees_on_negation_queries() {
        let src = "base node/1. base broken/1.
             init node(a). init node(b). init broken(b).
             healthy(X) <- node(X) * not broken(X).";
        let (p, db) = setup(src);
        let engine = crate::Engine::new(p.clone());
        for (n, expect) in [("a", true), ("b", false)] {
            let g = Goal::atom("healthy", vec![Term::sym(n)]);
            assert_eq!(engine.executable(&g, &db).unwrap(), expect, "{n}");
        }
    }
}
