//! Public execution API.

use crate::cache::SubgoalCache;
use crate::config::{EngineConfig, EngineError, SearchBackend, Stats, Strategy};
use crate::incremental::Materializer;
use crate::machine::{Ctx, Solver};
use crate::obs::Observer;
use crate::trace::{SpanPhase, TraceEvent};
use crate::tree::make_node;
use std::sync::Arc;
use td_core::{Goal, Program, Term, Var};
use td_db::{Database, Delta};

/// A successful execution: the final database, answer bindings for the
/// goal's variables, the applied update log, and search statistics.
#[derive(Clone, Debug)]
pub struct Solution {
    /// Database at commit.
    pub db: Database,
    /// Resolved term for each goal variable `0..n` (a `Term::Var` entry
    /// means the execution left that variable unconstrained).
    pub answer: Vec<Term>,
    /// The elementary updates the successful execution applied, in order.
    pub delta: Delta,
    /// Every relation the search read while finding this solution —
    /// including on failed branches (see [`td_db::ReadSet`]). This is the
    /// read set a store-level OCC commit validates against.
    pub reads: td_db::ReadSet,
    /// Search statistics up to (and including) this solution.
    pub stats: Stats,
    /// Committed-path trace (empty unless `EngineConfig::trace`).
    pub trace: crate::trace::Trace,
}

/// The result of asking for one execution.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// A successful execution was found; the transaction commits.
    Success(Box<Solution>),
    /// The whole search space was explored without success; the transaction
    /// aborts and the database is unchanged.
    Failure { stats: Stats },
}

impl Outcome {
    /// True if the execution committed.
    pub fn is_success(&self) -> bool {
        matches!(self, Outcome::Success(_))
    }

    /// The solution, if successful.
    pub fn solution(&self) -> Option<&Solution> {
        match self {
            Outcome::Success(s) => Some(s),
            Outcome::Failure { .. } => None,
        }
    }

    /// Statistics either way.
    pub fn stats(&self) -> Stats {
        match self {
            Outcome::Success(s) => s.stats,
            Outcome::Failure { stats } => *stats,
        }
    }
}

/// The Transaction Datalog interpreter.
///
/// ```
/// use td_engine::Engine;
/// use td_parser::parse_program;
/// use td_db::Database;
///
/// let parsed = parse_program(
///     "base money/1. init money(5).
///      spend <- money(X) * X >= 1 * del.money(X) * Y is X - 1 * ins.money(Y).",
/// ).unwrap();
/// let mut db = Database::with_schema_of(&parsed.program);
/// for atom in &parsed.init {
///     let t = td_db::Tuple::new(atom.ground_args().unwrap());
///     db = db.insert(atom.pred, &t).unwrap().0;
/// }
/// let engine = Engine::new(parsed.program.clone());
/// let goal = td_core::Goal::prop("spend");
/// let outcome = engine.solve(&goal, &db).unwrap();
/// assert!(outcome.is_success());
/// let sol = outcome.solution().unwrap();
/// assert!(sol.db.contains(td_core::Pred::new("money", 1), &td_db::tuple!(4)));
/// ```
#[derive(Clone, Debug)]
pub struct Engine {
    program: Program,
    config: EngineConfig,
    /// Subgoal answer cache, allocated once per engine when
    /// `EngineConfig::subgoal_cache` is set. Shared (via `Arc`) across
    /// every `solve`/`solutions` call on this engine and its clones, so a
    /// warm engine replays answers across queries too.
    cache: Option<Arc<SubgoalCache>>,
    /// Incremental materializer, compiled once per engine when
    /// `EngineConfig::materialize` is set and the program has a
    /// Datalog-evaluable fragment (`None` otherwise — the engine then runs
    /// exactly as without the flag). Shared across calls and clones like
    /// the cache, so materialized states stay warm between queries.
    mat: Option<Arc<Materializer>>,
    /// Observability sink (metrics registry + optional event stream),
    /// attached with [`Engine::with_observer`]. `None` = zero overhead.
    obs: Option<Arc<Observer>>,
}

impl Engine {
    /// Engine with default configuration.
    pub fn new(program: Program) -> Engine {
        Engine::with_config(program, EngineConfig::default())
    }

    /// Engine with explicit configuration.
    pub fn with_config(program: Program, config: EngineConfig) -> Engine {
        let cache = config
            .subgoal_cache
            .then(|| Arc::new(SubgoalCache::new(config.cache_capacity)));
        let mat = config
            .materialize
            .then(|| Materializer::compile(&program).ok().map(Arc::new))
            .flatten();
        Engine {
            program,
            config,
            cache,
            mat,
            obs: None,
        }
    }

    /// Attach an observability sink: every subsequent `solve`/`solutions`
    /// call absorbs its statistics (flat counters, per-rule expansion
    /// counts, backtrack-depth distribution, per-subgoal cache tallies)
    /// into `obs.registry`, and — when the observer carries an event log —
    /// emits structured span events, on every backend.
    pub fn with_observer(mut self, obs: Arc<Observer>) -> Engine {
        self.obs = Some(obs);
        self
    }

    /// The attached observability sink, if any.
    pub fn observer(&self) -> Option<&Arc<Observer>> {
        self.obs.as_ref()
    }

    /// The program this engine executes.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The engine's subgoal answer cache (None unless
    /// `EngineConfig::subgoal_cache` is set). Exposes lifetime hit/miss/
    /// eviction counters for reporting.
    pub fn subgoal_cache(&self) -> Option<&Arc<SubgoalCache>> {
        self.cache.as_ref()
    }

    /// The engine's incremental materializer (None unless
    /// `EngineConfig::materialize` is set *and* the program has a
    /// Datalog-evaluable fragment). Exposes lifetime probe/rebuild/
    /// maintenance counters for reporting.
    pub fn materializer(&self) -> Option<&Arc<Materializer>> {
        self.mat.as_ref()
    }

    /// Execute `goal` against `db`, returning the first successful
    /// execution (the committed transaction) or failure.
    ///
    /// With [`SearchBackend::Parallel`] the search fans out over worker
    /// threads, provided the configuration is compatible (exhaustive
    /// strategy, no tracing); otherwise it silently runs sequentially —
    /// see `docs/PARALLELISM.md` for the exact rules.
    pub fn solve(&self, goal: &Goal, db: &Database) -> Result<Outcome, EngineError> {
        let outcome = 'search: {
            if let SearchBackend::Parallel {
                threads,
                deterministic,
            } = self.config.backend
            {
                if self.config.strategy == Strategy::Exhaustive && !self.config.trace {
                    break 'search crate::parallel::solve(
                        &self.program,
                        &self.config,
                        goal,
                        db,
                        threads,
                        deterministic,
                        self.cache.clone(),
                        self.mat.clone(),
                        self.obs.clone(),
                    )?;
                }
            }
            let mut found = self.solutions(goal, db, 1)?;
            match found.solutions.pop() {
                Some(s) => Outcome::Success(Box::new(s)),
                None => Outcome::Failure { stats: found.stats },
            }
        };
        // Outcome-level counters are backend-invariant: in deterministic
        // mode the parallel search reports the same witness as the
        // sequential one, so these totals must agree across backends even
        // though raw step counts do not (configuration expansions are
        // coarser than elementary steps).
        if let Some(obs) = &self.obs {
            match &outcome {
                Outcome::Success(s) => {
                    obs.registry.add_counter("solutions", 1);
                    obs.registry
                        .add_counter("committed_updates", s.delta.len() as u64);
                }
                Outcome::Failure { .. } => obs.registry.add_counter("failures", 1),
            }
        }
        Ok(outcome)
    }

    /// Is `goal` executable on `db`? (The paper's decision problem.)
    pub fn executable(&self, goal: &Goal, db: &Database) -> Result<bool, EngineError> {
        Ok(self.solve(goal, db)?.is_success())
    }

    /// Up to `limit` distinct successful executions, in search order.
    ///
    /// Distinctness is by search path, not final state: two different
    /// interleavings reaching the same database count twice. Always runs
    /// on the sequential machine: multi-solution enumeration is inherently
    /// ordered, so the parallel backend does not apply here.
    pub fn solutions(
        &self,
        goal: &Goal,
        db: &Database,
        limit: usize,
    ) -> Result<Solutions, EngineError> {
        let nvars = goal_num_vars(goal);
        if let Some(obs) = &self.obs {
            obs.emit(None, || TraceEvent::SpanEnter {
                phase: SpanPhase::Solve,
                detail: goal.to_string(),
            });
        }
        let mut ctx = Ctx::new(
            &self.program,
            &self.config,
            self.cache.clone(),
            self.mat.clone(),
            self.obs.clone(),
        );
        ctx.bindings.alloc(nvars);
        let mut solver = Solver::new(make_node(goal), db.clone());
        let mut out = Vec::new();
        let mut first = true;
        while out.len() < limit {
            let found = if first {
                first = false;
                solver.run(&mut ctx)?
            } else {
                solver.resume(&mut ctx)?
            };
            if !found {
                break;
            }
            let answer = (0..nvars)
                .map(|i| ctx.bindings.resolve(Term::var(i)))
                .collect();
            let mut delta = Delta::new();
            for op in &ctx.delta {
                delta.push(op.clone());
            }
            out.push(Solution {
                db: solver.db.clone(),
                answer,
                delta,
                reads: ctx.reads.clone(),
                stats: ctx.stats,
                trace: crate::trace::Trace {
                    events: ctx.trace.clone(),
                },
            });
        }
        if let Some(obs) = &self.obs {
            obs.registry.absorb(&self.program, &ctx.stats, &ctx.local);
            let found = out.len();
            obs.emit(None, || TraceEvent::SpanExit {
                phase: SpanPhase::Solve,
                detail: format!("solutions={found}"),
            });
        }
        Ok(Solutions {
            solutions: out,
            stats: ctx.stats,
        })
    }
}

/// The collected solutions of a bounded search.
#[derive(Clone, Debug)]
pub struct Solutions {
    /// Solutions in search order (up to the requested limit).
    pub solutions: Vec<Solution>,
    /// Statistics for the whole search.
    pub stats: Stats,
}

/// Number of variables a goal mentions (max id + 1 — goals produced by the
/// parser use dense ids starting at 0).
pub fn goal_num_vars(goal: &Goal) -> u32 {
    goal.vars()
        .into_iter()
        .map(|Var(i)| i + 1)
        .max()
        .unwrap_or(0)
}

/// Load `init` facts (ground atoms) into a database that already has the
/// program's schema.
pub fn load_init(db: &Database, init: &[td_core::Atom]) -> Result<Database, EngineError> {
    let mut cur = db.clone();
    for atom in init {
        let Some(values) = atom.ground_args() else {
            return Err(EngineError::Instantiation {
                context: format!("init {atom}"),
            });
        };
        cur = cur
            .insert(atom.pred, &td_db::Tuple::new(values))
            .map_err(|e| EngineError::Db(e.to_string()))?
            .0;
    }
    Ok(cur)
}
