//! Frontier-action enumeration over ground configurations — the single
//! implementation of the small-step transition relation the decider and
//! the parallel backend drive. (The sequential machine composes the same
//! primitives under its trail/choicepoint discipline instead; see the
//! module docs in [`super`].)

use super::{
    apply_update, bind_answer, check_absent, eval_ground_builtin, matching_tuples,
    num_vars_in_tree, probe_subgoal, replay_answer, subst_tree, unify_project, BuiltinOut, Hooks,
    Probe,
};
use crate::cache::{CachedAnswer, SubgoalCache};
use crate::config::EngineError;
use crate::incremental::Materializer;
use crate::tree::{frontier, leaf_at, make_node, rewrite, sequence, PTree};
use std::sync::Arc;
use td_core::unify::{unify_args, unify_terms};
use td_core::{Goal, Program, Term, Var};
use td_db::{Database, DeltaOp};

/// A scheduling-agnostic configuration of the transition system: live
/// process tree (`None` = complete execution), current database, the
/// variable high-water mark, and the goal's answer terms under the
/// substitutions made so far.
#[derive(Clone)]
pub(crate) struct Config {
    /// Live process tree; `None` = complete (successful) execution.
    pub tree: Option<Arc<PTree>>,
    pub db: Database,
    /// High-water mark of allocated variable ids along this path. Renaming
    /// rules apart from this (rather than from the tree's current maximum)
    /// prevents a fresh rule variable from capturing an answer variable
    /// that no longer occurs in the tree.
    pub nvars: u32,
    /// The goal's answer terms under the substitutions made so far. Tracked
    /// separately from the tree because an answer variable can be solved
    /// away (vanish from the tree) long before the execution completes.
    pub answer: Vec<Term>,
}

impl Config {
    /// Configuration for drivers that do not track answer terms (the
    /// decider's decision problem needs only reachability): the unfold
    /// base is the tree's own variable count — safe exactly because there
    /// are no off-tree answer variables to capture, and it keeps
    /// α-equivalent configurations on identical variable ids.
    pub(crate) fn ground(tree: Arc<PTree>, db: Database) -> Config {
        let nvars = num_vars_in_tree(&tree);
        Config {
            tree: Some(tree),
            db,
            nvars,
            answer: Vec::new(),
        }
    }
}

/// One enabled transition, with its effects already applied: the successor
/// configuration plus the elementary update ops the step performed (one
/// for an update, the replayed delta for a cache macro-step, empty
/// otherwise). Drivers consume it through [`Kernel::apply`].
pub(crate) struct Action {
    tree: Option<Arc<PTree>>,
    db: Database,
    nvars: u32,
    answer: Vec<Term>,
    ops: Vec<DeltaOp>,
}

/// The transition kernel: the program plus the (optional) shared subgoal
/// answer cache that turns contiguous subtransactions into macro-steps, and
/// the (optional) incremental materializer that answers ground calls on
/// materialized derived predicates with an indexed probe.
pub(crate) struct Kernel<'p> {
    pub program: &'p Program,
    pub cache: Option<Arc<SubgoalCache>>,
    pub mat: Option<Arc<Materializer>>,
}

impl Kernel<'_> {
    /// Every configuration reachable from `cfg` in one step, across all
    /// schedules and all nondeterministic choices — frontier paths left to
    /// right, per-leaf alternatives in canonical order (tuple order is
    /// `select`'s sorted order, rule order is program order, answers are
    /// in canonical yield order). That ordering is load-bearing: the
    /// parallel backend's path labels index into it, and they must agree
    /// with sequential depth-first exploration.
    ///
    /// A fault (non-ground update or absence test, storage error, builtin
    /// fault) ends enumeration: the actions produced *before* it are
    /// returned alongside the error, positioned exactly where the failing
    /// successor would have been — deterministic drivers need that index
    /// to order the error among the successors; drivers that abort on any
    /// fault simply drop the actions.
    pub(crate) fn actions(
        &self,
        cfg: &Config,
        hooks: &mut Hooks<'_>,
    ) -> (Vec<Action>, Option<EngineError>) {
        let mut out: Vec<Action> = Vec::new();
        let Some(tree) = &cfg.tree else {
            return (out, None);
        };
        let paths = frontier(tree);
        // A sole frontier action executes as a contiguous block — the
        // cacheability condition for derived-atom calls (the machine
        // applies the same condition, so all three backends make identical
        // caching decisions).
        let sole = paths.len() == 1;
        for path in paths {
            let leaf = leaf_at(tree, &path).clone();
            match leaf {
                Goal::Fail => {}
                Goal::True | Goal::Seq(_) | Goal::Par(_) => {
                    unreachable!("structural goals expanded by make_node")
                }
                Goal::Atom(atom) if self.program.is_base(atom.pred) => {
                    hooks.reads.record(atom.pred);
                    for t in matching_tuples(&cfg.db, &atom) {
                        if let Some((new_tree, new_answer)) =
                            unify_project(tree, &path, None, cfg.nvars, &cfg.answer, |b| {
                                atom.args
                                    .iter()
                                    .zip(t.values())
                                    .all(|(a, v)| unify_terms(b, *a, Term::Val(*v)))
                            })
                        {
                            out.push(Action {
                                tree: new_tree,
                                db: cfg.db.clone(),
                                nvars: cfg.nvars,
                                answer: new_answer,
                                ops: Vec::new(),
                            });
                        }
                    }
                }
                Goal::Atom(atom) => {
                    if sole && atom.is_ground() {
                        // A materialized probe beats both the cache and rule
                        // unfolding: the call is a pure query, so it succeeds
                        // (erasing the leaf, no bindings, no delta) or fails
                        // (no successor) as a single macro-step.
                        if let Some(mat) = &self.mat {
                            if let Some(holds) = mat.holds(&cfg.db, &atom) {
                                hooks.stats.mat_probes += 1;
                                // A view probe reads every base relation
                                // feeding the materialized fragment.
                                for p in mat.base_support() {
                                    hooks.reads.record(p);
                                }
                                if let Some(cache) = &self.cache {
                                    // Materialization supersedes the cache
                                    // for this predicate; never double-store.
                                    cache.note_unsuitable();
                                }
                                if holds {
                                    out.push(Action {
                                        tree: rewrite(tree, &path, None),
                                        db: cfg.db.clone(),
                                        nvars: cfg.nvars,
                                        answer: cfg.answer.clone(),
                                        ops: Vec::new(),
                                    });
                                }
                                continue;
                            }
                        }
                        if let Some(cache) = self.cache.clone() {
                            let subgoal = Goal::Atom(atom.clone());
                            match probe_subgoal(self.program, &cache, &cfg.db, &subgoal, hooks) {
                                Probe::Replay { answers, vars } => {
                                    if let Err(e) = self
                                        .replay(cfg, tree, &path, &vars, &answers, &mut out, hooks)
                                    {
                                        return (out, Some(e));
                                    }
                                    continue;
                                }
                                Probe::Lazy => {}
                            }
                        }
                    }
                    for &rid in self.program.rules_for(atom.pred) {
                        let rule = self.program.rule(rid);
                        let base = cfg.nvars;
                        let (head, body) = rule.rename_apart(base);
                        let replacement = make_node(&body);
                        let new_nvars = base + rule.num_vars();
                        if let Some((new_tree, new_answer)) =
                            unify_project(tree, &path, replacement, new_nvars, &cfg.answer, |b| {
                                unify_args(b, &atom.args, &head.args)
                            })
                        {
                            hooks.stats.unfolds += 1;
                            hooks.local.observe_unfold(rid);
                            out.push(Action {
                                tree: new_tree,
                                db: cfg.db.clone(),
                                nvars: new_nvars,
                                answer: new_answer,
                                ops: Vec::new(),
                            });
                        }
                    }
                }
                Goal::NotAtom(atom) => {
                    hooks.reads.record(atom.pred);
                    match check_absent(&cfg.db, &atom) {
                        Err(e) => return (out, Some(e)),
                        Ok(false) => {}
                        Ok(true) => out.push(Action {
                            tree: rewrite(tree, &path, None),
                            db: cfg.db.clone(),
                            nvars: cfg.nvars,
                            answer: cfg.answer.clone(),
                            ops: Vec::new(),
                        }),
                    }
                }
                Goal::Ins(atom) | Goal::Del(atom) => {
                    let is_ins = matches!(leaf_at(tree, &path), Goal::Ins(_));
                    match apply_update(&cfg.db, &atom, is_ins) {
                        Err(e) => return (out, Some(e)),
                        Ok((next, _changed, op)) => {
                            hooks.stats.db_ops += 1;
                            if let Some(mat) = &self.mat {
                                mat.apply_ops(&cfg.db, std::slice::from_ref(&op), &next);
                            }
                            out.push(Action {
                                tree: rewrite(tree, &path, None),
                                db: next,
                                nvars: cfg.nvars,
                                answer: cfg.answer.clone(),
                                ops: vec![op],
                            });
                        }
                    }
                }
                Goal::Builtin(op, terms) => match eval_ground_builtin(op, &terms) {
                    Err(e) => return (out, Some(e)),
                    Ok(BuiltinOut::Fails) => {}
                    Ok(BuiltinOut::Succeeds) => out.push(Action {
                        tree: rewrite(tree, &path, None),
                        db: cfg.db.clone(),
                        nvars: cfg.nvars,
                        answer: cfg.answer.clone(),
                        ops: Vec::new(),
                    }),
                    Ok(BuiltinOut::Binds(v, val)) => {
                        let new_tree = rewrite(tree, &path, None).map(|t| subst_tree(&t, v, val));
                        let new_answer = cfg
                            .answer
                            .iter()
                            .map(|t| if *t == Term::Var(v) { val } else { *t })
                            .collect();
                        out.push(Action {
                            tree: new_tree,
                            db: cfg.db.clone(),
                            nvars: cfg.nvars,
                            answer: new_answer,
                            ops: Vec::new(),
                        });
                    }
                },
                Goal::Choice(branches) => {
                    for b in &branches {
                        out.push(Action {
                            tree: rewrite(tree, &path, make_node(b)),
                            db: cfg.db.clone(),
                            nvars: cfg.nvars,
                            answer: cfg.answer.clone(),
                            ops: Vec::new(),
                        });
                    }
                }
                Goal::Iso(inner) => {
                    // An isolated block runs as a contiguous sub-execution
                    // from the current database — exactly the shape the
                    // subgoal cache stores. Try a replay before the lazy
                    // transform.
                    if let Some(cache) = self.cache.clone() {
                        match probe_subgoal(self.program, &cache, &cfg.db, &inner, hooks) {
                            Probe::Replay { answers, vars } => {
                                if let Err(e) =
                                    self.replay(cfg, tree, &path, &vars, &answers, &mut out, hooks)
                                {
                                    return (out, Some(e));
                                }
                                continue;
                            }
                            Probe::Lazy => {}
                        }
                    }
                    // Committing to start an isolated block sequences the
                    // whole remaining tree after it (contiguity — the
                    // paper's ⊙); schedules where the block starts later
                    // arise from stepping other frontier actions first.
                    // Bindings made inside the block flow to the
                    // continuation because it is one tree.
                    hooks.stats.iso_enters += 1;
                    let rest = rewrite(tree, &path, None);
                    out.push(Action {
                        tree: sequence(make_node(&inner), rest),
                        db: cfg.db.clone(),
                        nvars: cfg.nvars,
                        answer: cfg.answer.clone(),
                        ops: Vec::new(),
                    });
                }
            }
        }
        (out, None)
    }

    /// Consume a chosen action, yielding the successor configuration and
    /// the elementary ops the transition applied (in order). Enumeration
    /// already carried out the semantics — `apply` is the hand-off where a
    /// driver takes ownership and layers its own bookkeeping (path labels,
    /// delta chains, work queues) on top.
    pub(crate) fn apply(&self, action: Action) -> (Config, Vec<DeltaOp>) {
        (
            Config {
                tree: action.tree,
                db: action.db,
                nvars: action.nvars,
                answer: action.answer,
            },
            action.ops,
        )
    }

    /// One macro-step successor per cached answer: the answer's bindings
    /// applied to the rest of the tree and its delta replayed onto the
    /// database, in canonical answer order.
    #[allow(clippy::too_many_arguments)]
    fn replay(
        &self,
        cfg: &Config,
        tree: &Arc<PTree>,
        path: &[usize],
        vars: &[Var],
        answers: &[CachedAnswer],
        out: &mut Vec<Action>,
        hooks: &mut Hooks<'_>,
    ) -> Result<(), EngineError> {
        for ans in answers {
            if let Some((new_tree, new_answer)) =
                unify_project(tree, path, None, cfg.nvars, &cfg.answer, |b| {
                    bind_answer(b, vars, ans)
                })
            {
                let mut ops = Vec::new();
                let db = replay_answer(&cfg.db, ans, |op| {
                    hooks.stats.db_ops += 1;
                    ops.push(op.clone());
                })?;
                if let Some(mat) = &self.mat {
                    mat.apply_ops(&cfg.db, &ops, &db);
                }
                out.push(Action {
                    tree: new_tree,
                    db,
                    nvars: cfg.nvars,
                    answer: new_answer,
                    ops,
                });
            }
        }
        Ok(())
    }
}
