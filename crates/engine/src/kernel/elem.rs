//! Elementary operations of the transition relation — base-relation
//! queries, absence tests, `ins`/`del` updates, and builtins. These are
//! the leaves every backend must execute identically; each helper carries
//! the semantics (including the exact failure/fault split) once.

use crate::config::EngineError;
use td_core::goal::Builtin;
use td_core::unify::unify_terms;
use td_core::{Atom, Bindings, Term, Value, Var};
use td_db::{Database, DeltaOp, Tuple};

/// Apply current bindings to an atom's arguments.
pub(crate) fn resolve_atom(bindings: &Bindings, atom: &Atom) -> Atom {
    Atom {
        pred: atom.pred,
        args: atom.args.iter().map(|t| bindings.resolve(*t)).collect(),
    }
}

/// Tuples of `db` matching the (resolved) query atom's bound positions.
/// [`td_db::Relation::select`] returns every regime in sorted
/// (lexicographic) order — the engine's canonical exploration order — so no
/// re-sort is needed here. An undeclared relation has no tuples.
pub(crate) fn matching_tuples(db: &Database, atom: &Atom) -> Vec<Tuple> {
    let Some(rel) = db.relation(atom.pred) else {
        return Vec::new();
    };
    let pattern: Vec<Option<Value>> = atom.args.iter().map(|t| t.as_value()).collect();
    rel.select(&pattern)
}

/// Unify a query atom's arguments with a tuple. Returns false on clash
/// (possible with repeated variables, e.g. `p(X, X)`); the caller's
/// choicepoint mark cleans up partial bindings.
pub(crate) fn bind_tuple(bindings: &mut Bindings, atom: &Atom, tuple: &Tuple) -> bool {
    atom.args
        .iter()
        .zip(tuple.values())
        .all(|(arg, val)| unify_terms(bindings, *arg, Term::Val(*val)))
}

/// The elementary `not p(t̄)` test. `Ok(true)` = the (ground) atom is
/// absent and the step proceeds; `Ok(false)` = present, the step fails;
/// `Err` = the atom is non-ground, a fault in every backend.
pub(crate) fn check_absent(db: &Database, atom: &Atom) -> Result<bool, EngineError> {
    if !atom.is_ground() {
        return Err(EngineError::Instantiation {
            context: format!("not {atom}"),
        });
    }
    Ok(!db.holds(atom))
}

/// The elementary `ins.p(t̄)` / `del.p(t̄)` step on a (resolved) atom.
/// Returns the successor database, whether it actually changed, and the
/// delta op recording the update. Non-ground arguments and storage errors
/// are faults, not failures.
pub(crate) fn apply_update(
    db: &Database,
    atom: &Atom,
    is_ins: bool,
) -> Result<(Database, bool, DeltaOp), EngineError> {
    let Some(values) = atom.ground_args() else {
        return Err(EngineError::Instantiation {
            context: format!("update on {atom}"),
        });
    };
    let t = Tuple::new(values);
    let result = if is_ins {
        db.insert(atom.pred, &t)
    } else {
        db.delete(atom.pred, &t)
    };
    let (next, changed) = result.map_err(|e| EngineError::Db(e.to_string()))?;
    let op = if is_ins {
        DeltaOp::Ins(atom.pred, t)
    } else {
        DeltaOp::Del(atom.pred, t)
    };
    Ok((next, changed, op))
}

/// Evaluate a builtin on the machine's shared trail. `Ok(true)` = succeeds
/// (possibly binding), `Ok(false)` = fails, `Err` = fatal
/// (instantiation/type/overflow). Also serves the bottom-up Datalog and
/// tabling evaluators, which share the interpreter's builtin semantics.
pub(crate) fn eval_builtin(
    bindings: &mut Bindings,
    op: Builtin,
    terms: &[Term],
) -> Result<bool, EngineError> {
    let resolved: Vec<Term> = terms.iter().map(|t| bindings.resolve(*t)).collect();
    let ground_int = |t: Term| -> Result<i64, EngineError> {
        match t {
            Term::Val(Value::Int(i)) => Ok(i),
            Term::Val(v) => Err(EngineError::Type {
                context: format!("`{v}` is not an integer in `{}`", op.op_str()),
            }),
            Term::Var(v) => Err(EngineError::Instantiation {
                context: format!("`{v}` in `{}`", op.op_str()),
            }),
        }
    };
    match op {
        Builtin::Eq => Ok(unify_terms(bindings, resolved[0], resolved[1])),
        Builtin::Ne => {
            let (a, b) = (resolved[0], resolved[1]);
            match (a, b) {
                (Term::Val(x), Term::Val(y)) => Ok(x != y),
                _ => Err(EngineError::Instantiation {
                    context: format!("`{a} != {b}`"),
                }),
            }
        }
        Builtin::Lt | Builtin::Le | Builtin::Gt | Builtin::Ge => {
            let a = ground_int(resolved[0])?;
            let b = ground_int(resolved[1])?;
            Ok(match op {
                Builtin::Lt => a < b,
                Builtin::Le => a <= b,
                Builtin::Gt => a > b,
                Builtin::Ge => a >= b,
                _ => unreachable!(),
            })
        }
        Builtin::Add | Builtin::Sub | Builtin::Mul => {
            let a = ground_int(resolved[0])?;
            let b = ground_int(resolved[1])?;
            let r = match op {
                Builtin::Add => a.checked_add(b),
                Builtin::Sub => a.checked_sub(b),
                Builtin::Mul => a.checked_mul(b),
                _ => unreachable!(),
            };
            let Some(r) = r else {
                return Err(EngineError::Overflow {
                    context: format!("{a} {} {b}", op.op_str()),
                });
            };
            Ok(unify_terms(bindings, resolved[2], Term::int(r)))
        }
    }
}

/// The outcome of a ground builtin evaluation (structural-substitution
/// backends; no trail to bind through).
pub(crate) enum BuiltinOut {
    Fails,
    Succeeds,
    Binds(Var, Term),
}

/// Builtins over (mostly) ground configurations: comparisons demand ground
/// integers; `=` may bind one free variable; arithmetic may bind its
/// output.
pub(crate) fn eval_ground_builtin(op: Builtin, terms: &[Term]) -> Result<BuiltinOut, EngineError> {
    let ground_int = |t: Term| -> Result<i64, EngineError> {
        match t {
            Term::Val(Value::Int(i)) => Ok(i),
            Term::Val(v) => Err(EngineError::Type {
                context: format!("`{v}` in `{}`", op.op_str()),
            }),
            Term::Var(v) => Err(EngineError::Instantiation {
                context: format!("`{v}` in `{}`", op.op_str()),
            }),
        }
    };
    match op {
        Builtin::Eq => match (terms[0], terms[1]) {
            (Term::Val(a), Term::Val(b)) => Ok(if a == b {
                BuiltinOut::Succeeds
            } else {
                BuiltinOut::Fails
            }),
            (Term::Var(v), t @ Term::Val(_)) | (t @ Term::Val(_), Term::Var(v)) => {
                Ok(BuiltinOut::Binds(v, t))
            }
            (Term::Var(a), Term::Var(b)) => {
                if a == b {
                    Ok(BuiltinOut::Succeeds)
                } else {
                    Ok(BuiltinOut::Binds(a, Term::Var(b)))
                }
            }
        },
        Builtin::Ne => match (terms[0], terms[1]) {
            (Term::Val(a), Term::Val(b)) => Ok(if a != b {
                BuiltinOut::Succeeds
            } else {
                BuiltinOut::Fails
            }),
            (a, b) => Err(EngineError::Instantiation {
                context: format!("`{a} != {b}`"),
            }),
        },
        Builtin::Lt | Builtin::Le | Builtin::Gt | Builtin::Ge => {
            let a = ground_int(terms[0])?;
            let b = ground_int(terms[1])?;
            let ok = match op {
                Builtin::Lt => a < b,
                Builtin::Le => a <= b,
                Builtin::Gt => a > b,
                Builtin::Ge => a >= b,
                _ => unreachable!(),
            };
            Ok(if ok {
                BuiltinOut::Succeeds
            } else {
                BuiltinOut::Fails
            })
        }
        Builtin::Add | Builtin::Sub | Builtin::Mul => {
            let a = ground_int(terms[0])?;
            let b = ground_int(terms[1])?;
            let r = match op {
                Builtin::Add => a.checked_add(b),
                Builtin::Sub => a.checked_sub(b),
                Builtin::Mul => a.checked_mul(b),
                _ => unreachable!(),
            }
            .ok_or_else(|| EngineError::Overflow {
                context: format!("{a} {} {b}", op.op_str()),
            })?;
            match terms[2] {
                Term::Var(v) => Ok(BuiltinOut::Binds(v, Term::int(r))),
                Term::Val(c) => Ok(if c == Value::Int(r) {
                    BuiltinOut::Succeeds
                } else {
                    BuiltinOut::Fails
                }),
            }
        }
    }
}
