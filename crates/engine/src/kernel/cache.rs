//! Subgoal-cache macro-steps: probe (and on miss, populate) the shared
//! subtransaction answer cache, and replay one cached answer as a single
//! transition. Cacheability — isolated blocks always, derived-atom calls
//! only when sole-frontier and ground — is decided by the callers, so all
//! three backends make identical caching decisions; this module owns what
//! happens once a contiguous subgoal is in hand.

use super::Hooks;
use crate::cache::{canonicalize_with_map, CacheEntry, CachedAnswer, SubgoalCache};
use crate::config::{EngineConfig, EngineError};
use crate::obs::subgoal_label;
use crate::trace::{ProbeOutcome, TraceEvent};
use crate::tree::make_node;
use std::sync::Arc;
use td_core::unify::unify_terms;
use td_core::{Bindings, Goal, Program, Term, Var};
use td_db::{Database, Delta, DeltaOp};

/// What a cache probe resolved to.
pub(crate) enum Probe {
    /// The subgoal's complete answer set, in canonical depth-first yield
    /// order; `vars` are the caller-side variables each answer's values
    /// bind, positionally.
    Replay {
        answers: Arc<Vec<CachedAnswer>>,
        vars: Vec<Var>,
    },
    /// No usable entry (cache off for this subgoal, or it is unsuitable):
    /// the caller must run the lazy elementary path.
    Lazy,
}

/// Probe the cache for a contiguous subgoal, enumerating and inserting the
/// answer set on a miss. Hit/miss counters, per-subgoal tallies and (when
/// `hooks.events` is set) per-probe events are charged to `hooks`; the
/// subgoal label is only rendered when something would consume it.
pub(crate) fn probe_subgoal(
    program: &Program,
    cache: &SubgoalCache,
    db: &Database,
    subgoal: &Goal,
    hooks: &mut Hooks<'_>,
) -> Probe {
    let (canon, vars) = canonicalize_with_map(subgoal);
    let label =
        (hooks.local.is_enabled() || hooks.events.is_some()).then(|| subgoal_label(subgoal));
    let note = |hooks: &mut Hooks<'_>, outcome: ProbeOutcome| {
        if let Some(l) = &label {
            hooks.local.observe_cache(l, outcome);
            if let Some(o) = hooks.events {
                o.emit(None, || TraceEvent::CacheProbe {
                    subgoal: l.clone(),
                    outcome,
                });
            }
        }
    };
    let key = (canon, db.digest());
    match cache.lookup(&key) {
        Some(CacheEntry::Answers { answers, reads }) => {
            hooks.stats.cache_hits += 1;
            // The macro-step stands in for the full lazy exploration, so
            // the replaying transaction inherits everything it read.
            hooks.reads.merge(&reads);
            note(hooks, ProbeOutcome::Hit);
            Probe::Replay { answers, vars }
        }
        Some(CacheEntry::Unsuitable) => {
            note(hooks, ProbeOutcome::Unsuitable);
            Probe::Lazy
        }
        None => {
            hooks.stats.cache_misses += 1;
            match enumerate_answers(program, &key.0, vars.len() as u32, db) {
                Some((list, reads)) => {
                    note(hooks, ProbeOutcome::Miss);
                    hooks.reads.merge(&reads);
                    let answers = Arc::new(list);
                    cache.insert(
                        key,
                        CacheEntry::Answers {
                            answers: answers.clone(),
                            reads: Arc::new(reads),
                        },
                    );
                    Probe::Replay { answers, vars }
                }
                None => {
                    note(hooks, ProbeOutcome::Unsuitable);
                    cache.insert(key, CacheEntry::Unsuitable);
                    Probe::Lazy
                }
            }
        }
    }
}

/// Bind a replayed answer's ground values to the subgoal's original
/// variables on the machine's trail. False on clash; the caller's
/// choicepoint mark cleans up partial bindings.
pub(crate) fn bind_answer(bindings: &mut Bindings, vars: &[Var], ans: &CachedAnswer) -> bool {
    vars.iter()
        .zip(&ans.values)
        .all(|(v, val)| unify_terms(bindings, Term::Var(*v), Term::Val(*val)))
}

/// Re-apply a cached answer's state delta to `db`, invoking `on_op` for
/// each op as it lands (drivers count and log them). A storage fault is a
/// fault here too, exactly as on the lazy path.
pub(crate) fn replay_answer(
    db: &Database,
    ans: &CachedAnswer,
    mut on_op: impl FnMut(&DeltaOp),
) -> Result<Database, EngineError> {
    let mut cur = db.clone();
    for op in ans.delta.ops() {
        cur = op.apply(&cur).map_err(|e| EngineError::Db(e.to_string()))?;
        on_op(op);
    }
    Ok(cur)
}

/// Per-miss budget for answer-set enumeration: a subgoal that does not run
/// to exhaustion within this many elementary steps is marked unsuitable and
/// left to the lazy path.
const CACHE_ENUM_MAX_STEPS: u64 = 20_000;

/// A subgoal with more answers than this is not worth caching (the entry
/// would be large and the replay savings marginal); marked unsuitable.
const CACHE_ENUM_MAX_ANSWERS: usize = 256;

/// Enumerate the *complete* answer set of a canonical subgoal on `db`,
/// in the exhaustive machine's yield order, with duplicates preserved —
/// the replay must be indistinguishable (bindings, delta, order,
/// multiplicity) from running the subgoal lazily. The canonical answer
/// order is *defined* by the sequential driver, so this is the one place
/// the kernel calls back into [`crate::machine`].
///
/// `None` = unsuitable for caching: a fault occurred, an answer was
/// non-ground, or an enumeration bound was exceeded. Callers fall back to
/// the lazy path, which reproduces the original behaviour (including
/// surfacing the fault in its proper context).
///
/// On success the returned [`td_db::ReadSet`] is everything the exhaustive
/// enumeration read — all branches, successful and failed — which is
/// exactly the read dependency of every future replay of this entry.
pub(crate) fn enumerate_answers(
    program: &Program,
    goal: &Goal,
    nvars: u32,
    db: &Database,
) -> Option<(Vec<CachedAnswer>, td_db::ReadSet)> {
    use crate::machine::{Ctx, Solver};
    let config = EngineConfig {
        max_steps: CACHE_ENUM_MAX_STEPS,
        ..EngineConfig::default()
    };
    let mut ctx = Ctx::new(program, &config, None, None, None);
    ctx.bindings.alloc(nvars);
    let mut solver = Solver::new(make_node(goal), db.clone());
    let mut out = Vec::new();
    let mut first = true;
    loop {
        let found = if first {
            first = false;
            solver.run(&mut ctx)
        } else {
            solver.resume(&mut ctx)
        };
        match found {
            Ok(true) => {
                if out.len() >= CACHE_ENUM_MAX_ANSWERS {
                    return None;
                }
                let mut values = Vec::with_capacity(nvars as usize);
                for i in 0..nvars {
                    match ctx.bindings.resolve(Term::var(i)) {
                        Term::Val(v) => values.push(v),
                        // A non-ground answer cannot be replayed by value
                        // binding; leave this subgoal to the lazy path.
                        Term::Var(_) => return None,
                    }
                }
                let mut delta = Delta::new();
                for op in &ctx.delta {
                    delta.push(op.clone());
                }
                out.push(CachedAnswer { values, delta });
            }
            Ok(false) => return Some((out, std::mem::take(&mut ctx.reads))),
            Err(_) => return None,
        }
    }
}
