//! Structural substitution: unify under a scratch binding store, then
//! substitute the solution through the process tree (and, for drivers that
//! track them, the goal's answer terms). This is the ground backends'
//! counterpart of the sequential machine's shared trail.

use crate::tree::{rewrite, to_goal, PTree};
use std::sync::Arc;
use td_core::{Bindings, Term, Var};

/// Unify under a scratch binding store sized for the tree's variables, then
/// substitute the solution through the rewritten tree.
pub(crate) fn apply_unification(
    tree: &Arc<PTree>,
    path: &[usize],
    replacement: Option<Arc<PTree>>,
    unifier: impl FnOnce(&mut Bindings) -> bool,
) -> Option<Option<Arc<PTree>>> {
    let n = num_vars_in_tree(tree);
    apply_unification_n(tree, path, replacement, n, unifier)
}

/// [`apply_unification`] with an explicit variable high-water mark (needed
/// when the unifier mentions variables that are not in the tree, e.g. a
/// freshly renamed rule body).
pub(crate) fn apply_unification_n(
    tree: &Arc<PTree>,
    path: &[usize],
    replacement: Option<Arc<PTree>>,
    nvars: u32,
    unifier: impl FnOnce(&mut Bindings) -> bool,
) -> Option<Option<Arc<PTree>>> {
    let mut b = Bindings::new();
    b.alloc(nvars);
    if !unifier(&mut b) {
        return None;
    }
    let rewritten = rewrite(tree, path, replacement);
    Some(rewritten.map(|t| apply_bindings_tree(&t, &b)))
}

/// Unify under a scratch binding store, then substitute the solution
/// through both the rewritten tree and the answer terms.
pub(crate) fn unify_project(
    tree: &Arc<PTree>,
    path: &[usize],
    replacement: Option<Arc<PTree>>,
    nvars: u32,
    answer: &[Term],
    unifier: impl FnOnce(&mut Bindings) -> bool,
) -> Option<(Option<Arc<PTree>>, Vec<Term>)> {
    let mut b = Bindings::new();
    b.alloc(nvars);
    if !unifier(&mut b) {
        return None;
    }
    let rewritten = rewrite(tree, path, replacement);
    let new_tree = rewritten.map(|t| apply_bindings_tree(&t, &b));
    let new_answer = answer.iter().map(|t| b.resolve(*t)).collect();
    Some((new_tree, new_answer))
}

/// Variables in a tree: max id + 1.
pub(crate) fn num_vars_in_tree(tree: &Arc<PTree>) -> u32 {
    to_goal(tree)
        .vars()
        .into_iter()
        .map(|Var(i)| i + 1)
        .max()
        .unwrap_or(0)
}

/// Resolve every term of a tree against a binding store.
pub(crate) fn apply_bindings_tree(tree: &Arc<PTree>, b: &Bindings) -> Arc<PTree> {
    map_tree(tree, &mut |t| b.resolve(t))
}

/// Substitute one variable by a term throughout a tree.
pub(crate) fn subst_tree(tree: &Arc<PTree>, v: Var, val: Term) -> Arc<PTree> {
    map_tree(tree, &mut |t| if t == Term::Var(v) { val } else { t })
}

/// Map a term transformation over a tree.
pub(crate) fn map_tree(tree: &Arc<PTree>, f: &mut impl FnMut(Term) -> Term) -> Arc<PTree> {
    match &**tree {
        PTree::Lit(g) => Arc::new(PTree::Lit(g.map_terms(f))),
        PTree::Seq(cs) => Arc::new(PTree::Seq(cs.iter().map(|c| map_tree(c, f)).collect())),
        PTree::Par(cs) => Arc::new(PTree::Par(cs.iter().map(|c| map_tree(c, f)).collect())),
    }
}
