//! Rule unfolding on the machine's shared trail. The ground backends'
//! structural counterpart lives in [`super::ground`] (a renamed rule body
//! is unified through [`super::unify_project`]).

use super::Hooks;
use td_core::unify::unify_args;
use td_core::{Atom, Bindings, Goal, Program, RuleId};

/// Rename `rule_id` apart from the trail's high-water mark and unify its
/// head with the call. Returns the renamed body on success, charging the
/// unfold to `hooks`; trail cleanup on failure is the caller's choicepoint
/// discipline, like every trail-side primitive.
pub(crate) fn unfold_trail(
    program: &Program,
    bindings: &mut Bindings,
    atom: &Atom,
    rule_id: RuleId,
    hooks: &mut Hooks<'_>,
) -> Option<Goal> {
    let rule = program.rule(rule_id);
    let base = bindings.alloc(rule.num_vars());
    let (head, body) = rule.rename_apart(base);
    if !unify_args(bindings, &atom.args, &head.args) {
        return None;
    }
    hooks.stats.unfolds += 1;
    hooks.local.observe_unfold(rule_id);
    Some(body)
}
