//! The shared small-step transition kernel.
//!
//! Bonner's TD semantics is *one* transition relation over configurations
//! `(process tree, database)`: elementary database operations (`p(t̄)`,
//! `ins.p`, `del.p`, `not p`), rule unfolding, `or`-choice, and isolation
//! entry — plus the subgoal-cache macro-step that replays a contiguous
//! subtransaction's answer set in one move. This module is the single
//! implementation of that relation; the three search backends are thin
//! *drivers* that only decide **which** enabled action to take next:
//!
//! * [`crate::machine`] — strategy-ordered depth-first search with a
//!   choicepoint stack and a shared trail (lazy bindings);
//! * [`crate::decider`] — memoized explicit-state search, one visit per
//!   digest-keyed configuration (ground bindings, applied structurally);
//! * [`crate::parallel`] — work-stealing exploration of the same ground
//!   configuration graph across threads.
//!
//! The ground backends go through [`Kernel::actions`], which enumerates
//! every enabled transition of a [`Config`] — frontier paths left to
//! right, per-leaf alternatives in canonical order — with effects already
//! applied (TD states are persistent, so applying is as cheap as
//! describing). [`Kernel::apply`] is the hand-off where a driver takes
//! ownership of one [`Action`]'s successor configuration and layers its
//! own bookkeeping (path labels, delta chains, work queues) on top. The
//! sequential machine keeps its trail-based representation and instead
//! composes the kernel's primitives directly ([`elem`], [`unfold_trail`],
//! [`probe_subgoal`] + [`bind_answer`]/[`replay_answer`]) under its own
//! choicepoint discipline.
//!
//! Accounting is uniform: every kernel entry point takes [`Hooks`], and
//! charges unfolds, database ops, isolation entries and cache hit/miss
//! counters there, emitting per-probe observability events only when the
//! driver supplies an event sink (the parallel hot path passes `None` and
//! reports aggregate worker spans instead).
//!
//! Invariants drivers may rely on are spelled out in
//! `docs/ARCHITECTURE.md`.

mod cache;
mod elem;
mod ground;
mod subst;
mod unfold;

pub(crate) use cache::{bind_answer, probe_subgoal, replay_answer, Probe};
pub(crate) use elem::{
    apply_update, bind_tuple, check_absent, eval_builtin, eval_ground_builtin, matching_tuples,
    resolve_atom, BuiltinOut,
};
pub(crate) use ground::{Config, Kernel};
pub(crate) use subst::{
    apply_unification, apply_unification_n, num_vars_in_tree, subst_tree, unify_project,
};
pub(crate) use unfold::unfold_trail;

use crate::config::Stats;
use crate::obs::{LocalMetrics, Observer};
use td_db::ReadSet;

/// Driver-supplied accounting sinks for one kernel call.
///
/// The kernel charges the semantic cost of a transition here — `unfolds`,
/// `db_ops`, `iso_enters`, `cache_hits`/`cache_misses`, per-rule and
/// per-subgoal tallies — so every backend counts identically. Search cost
/// (steps, backtracks, choicepoints, queue depths) is scheduling, and
/// stays with the driver.
pub(crate) struct Hooks<'a> {
    pub stats: &'a mut Stats,
    pub local: &'a mut LocalMetrics,
    /// Per-probe event sink. `None` suppresses kernel-level event emission
    /// (the parallel hot path reports aggregate worker spans instead).
    pub events: Option<&'a Observer>,
    /// Transaction read set: every relation this execution consults —
    /// base-predicate matches, absence tests, materialized probes, cached
    /// replays — lands here, on every explored branch. Unlike the delta
    /// chain it is **monotone**: drivers must never truncate it on
    /// backtracking, because "this branch read `p` and failed" is exactly
    /// as commit-relevant as a read on the committed path (if `p` changed,
    /// the failed branch might now succeed and change the witness).
    pub reads: &'a mut ReadSet,
}
