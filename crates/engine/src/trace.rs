//! Structured execution traces.
//!
//! With `EngineConfig::trace` enabled, the engine records every event of
//! the *committed* execution path — rule unfoldings, tuple matches,
//! updates, isolation boundaries and choice commitments. Backtracked work
//! is truncated away, so the trace is exactly the story of the successful
//! execution: the basis for the workflow monitoring the paper calls for in
//! §3 ("monitoring, tracking and querying the status of workflow
//! activities").
//!
//! Tracing disables the subgoal answer cache (`EngineConfig::subgoal_cache`):
//! a cached answer is replayed as one macro-step, which has no elementary
//! events to record.

use std::fmt;
use td_core::{Atom, Pred, RuleId};
use td_db::Tuple;

/// A search phase bracketed by [`TraceEvent::SpanEnter`] /
/// [`TraceEvent::SpanExit`] events in the structured event stream
/// (`crate::obs::EventLog`). Unlike the committed-path events above the
/// span events are emitted by *every* backend, including the parallel and
/// cached configurations where the committed trace is unavailable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpanPhase {
    /// A whole top-level search (one `?-` goal or one `solve` call).
    Solve,
    /// Configuration expansion (the decider/parallel frontier loop).
    Expansion,
    /// An isolated block `iso { … }` executing under the ⊙ semantics.
    Isolation,
    /// A subgoal-cache probe (lookup + possible enumeration).
    CacheProbe,
    /// Replay of a cached answer set as macro-steps.
    CacheReplay,
    /// One parallel worker's lifetime (aggregate span: the exit detail
    /// carries its claim/steal totals).
    Worker,
}

impl SpanPhase {
    /// Stable lowercase name used in logs and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanPhase::Solve => "solve",
            SpanPhase::Expansion => "expansion",
            SpanPhase::Isolation => "isolation",
            SpanPhase::CacheProbe => "cache_probe",
            SpanPhase::CacheReplay => "cache_replay",
            SpanPhase::Worker => "worker",
        }
    }
}

/// What a subgoal-cache probe found.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProbeOutcome {
    /// A stored answer set was replayed.
    Hit,
    /// Nothing stored; the subgoal was (or will be) enumerated.
    Miss,
    /// A negative `Unsuitable` entry: the lazy path is mandatory.
    Unsuitable,
}

impl ProbeOutcome {
    /// Stable lowercase name used in logs and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            ProbeOutcome::Hit => "hit",
            ProbeOutcome::Miss => "miss",
            ProbeOutcome::Unsuitable => "unsuitable",
        }
    }
}

/// One event of a committed execution.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TraceEvent {
    /// A call unfolded into the body of a rule.
    Unfold { call: Atom, rule: RuleId },
    /// A tuple test matched.
    Match { query: Atom, tuple: Tuple },
    /// An absence test passed.
    Absent { query: Atom },
    /// A tuple was inserted (`changed` = it was previously absent).
    Ins {
        pred: Pred,
        tuple: Tuple,
        changed: bool,
    },
    /// A tuple was deleted (`changed` = it was previously present).
    Del {
        pred: Pred,
        tuple: Tuple,
        changed: bool,
    },
    /// A builtin test passed.
    Builtin { rendered: String },
    /// A choice committed to branch `index`.
    Choice { index: usize },
    /// An isolated block began.
    IsoEnter,
    /// The isolated block committed.
    IsoExit,
    /// A search phase began (structured event stream only).
    SpanEnter { phase: SpanPhase, detail: String },
    /// A search phase ended (structured event stream only).
    SpanExit { phase: SpanPhase, detail: String },
    /// A subgoal-cache probe resolved (structured event stream only).
    CacheProbe {
        subgoal: String,
        outcome: ProbeOutcome,
    },
    /// A parallel worker stole a task from another's queue (structured
    /// event stream only).
    WorkerSteal { thief: u32, victim: u32 },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Unfold { call, rule } => write!(f, "unfold {call} (rule #{})", rule.0),
            TraceEvent::Match { query, tuple } => write!(f, "match {query} = {tuple}"),
            TraceEvent::Absent { query } => write!(f, "absent {query}"),
            TraceEvent::Ins {
                pred,
                tuple,
                changed,
            } => {
                write!(
                    f,
                    "ins.{}{tuple}{}",
                    pred.name,
                    if *changed { "" } else { " (no-op)" }
                )
            }
            TraceEvent::Del {
                pred,
                tuple,
                changed,
            } => {
                write!(
                    f,
                    "del.{}{tuple}{}",
                    pred.name,
                    if *changed { "" } else { " (no-op)" }
                )
            }
            TraceEvent::Builtin { rendered } => write!(f, "check {rendered}"),
            TraceEvent::Choice { index } => write!(f, "choose branch {index}"),
            TraceEvent::IsoEnter => write!(f, "iso {{"),
            TraceEvent::IsoExit => write!(f, "}}"),
            TraceEvent::SpanEnter { phase, detail } => {
                write!(f, "[{} enter] {detail}", phase.as_str())
            }
            TraceEvent::SpanExit { phase, detail } => {
                write!(f, "[{} exit] {detail}", phase.as_str())
            }
            TraceEvent::CacheProbe { subgoal, outcome } => {
                write!(f, "cache probe {subgoal}: {}", outcome.as_str())
            }
            TraceEvent::WorkerSteal { thief, victim } => {
                write!(f, "worker {thief} stole from worker {victim}")
            }
        }
    }
}

/// A committed execution trace.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct Trace {
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events of a given kind, by predicate name (for updates/queries).
    pub fn count_updates(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Ins { .. } | TraceEvent::Del { .. }))
            .count()
    }

    /// Rule unfoldings in the committed run.
    pub fn count_unfolds(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Unfold { .. }))
            .count()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, e) in self.events.iter().enumerate() {
            writeln!(f, "{i:>4}  {e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, EngineConfig};
    use td_db::Database;
    use td_parser::parse_program;

    fn traced(src: &str) -> Trace {
        let parsed = parse_program(src).unwrap();
        let db = Database::with_schema_of(&parsed.program);
        let db = crate::load_init(&db, &parsed.init).unwrap();
        let engine =
            Engine::with_config(parsed.program.clone(), EngineConfig::default().with_trace());
        let out = engine.solve(&parsed.goals[0].goal, &db).unwrap();
        out.solution()
            .expect("test scenario succeeds")
            .trace
            .clone()
    }

    #[test]
    fn trace_records_the_committed_story() {
        let t = traced(
            "base t/1.
             put <- ins.t(1) * t(X) * del.t(X).
             ?- put.",
        );
        assert_eq!(t.count_unfolds(), 1);
        assert_eq!(t.count_updates(), 2);
        let rendered = t.to_string();
        assert!(rendered.contains("unfold put"));
        assert!(rendered.contains("ins.t(1)"));
        assert!(rendered.contains("match t(_V"), "{rendered}");
        assert!(rendered.contains("del.t(1)"));
    }

    #[test]
    fn backtracked_work_is_not_in_the_trace() {
        let t = traced(
            "base t/1.
             go <- ins.t(1) * fail.
             go <- ins.t(2).
             ?- go.",
        );
        let rendered = t.to_string();
        assert!(!rendered.contains("ins.t(1)"), "{rendered}");
        assert!(rendered.contains("ins.t(2)"));
        // only the committed unfold remains
        assert_eq!(t.count_unfolds(), 1);
    }

    #[test]
    fn iso_boundaries_bracket_the_block() {
        let t = traced("base t/1. ?- iso { ins.t(1) } * ins.t(2).");
        let kinds: Vec<&TraceEvent> = t.events.iter().collect();
        let enter = kinds
            .iter()
            .position(|e| matches!(e, TraceEvent::IsoEnter))
            .unwrap();
        let exit = kinds
            .iter()
            .position(|e| matches!(e, TraceEvent::IsoExit))
            .unwrap();
        let inner = kinds
            .iter()
            .position(|e| matches!(e, TraceEvent::Ins { tuple, .. } if tuple == &td_db::tuple!(1)))
            .unwrap();
        assert!(enter < inner && inner < exit);
    }

    #[test]
    fn choice_commitment_recorded() {
        let t = traced("base t/1. ?- { fail or ins.t(1) }.");
        assert!(t
            .events
            .iter()
            .any(|e| matches!(e, TraceEvent::Choice { index: 1 })));
    }

    #[test]
    fn noop_updates_are_flagged() {
        let t = traced("base t/1. init t(1). ?- ins.t(1).");
        assert!(t
            .events
            .iter()
            .any(|e| matches!(e, TraceEvent::Ins { changed: false, .. })));
    }

    #[test]
    fn tracing_off_yields_empty_trace() {
        let parsed = parse_program("base t/1. ?- ins.t(1).").unwrap();
        let db = Database::with_schema_of(&parsed.program);
        let engine = Engine::new(parsed.program.clone());
        let out = engine.solve(&parsed.goals[0].goal, &db).unwrap();
        assert!(out.solution().unwrap().trace.is_empty());
    }
}
