//! Executional entailment: `P, D₀ D₁ … Dₙ ⊨ φ`.
//!
//! The declarative semantics of TD (\[17, 20\], reviewed in the paper's
//! Appendix A) judges a goal against an explicit *path* — a sequence of
//! database states. Elementary operations constrain one or two consecutive
//! states (`p(t̄)` holds on the unit path `⟨D⟩` with `p(t̄) ∈ D`; `ins.p(t̄)`
//! holds on `⟨D, D ∪ {p(t̄)}⟩`), serial composition splits the path,
//! concurrent composition interleaves two executions over it, and `⊙`
//! demands a contiguous block.
//!
//! This module implements that judgment as a search over configurations
//! `(process tree, position in the path)` where each update step must
//! produce *exactly* the next state of the given sequence. It is the
//! executional counterpart of the model theory (the equivalence of the two
//! is established in \[17, 20\]), and serves the test-suite as an oracle that
//! is independent of the interpreter's scheduling and backtracking order:
//! the interpreter commits some path; `entails` re-judges the goal against
//! it.

use crate::config::EngineError;
use crate::decider::canonical_goal;
use crate::kernel::{
    apply_unification, apply_unification_n, apply_update, check_absent, eval_ground_builtin,
    matching_tuples, subst_tree, BuiltinOut,
};
use crate::tree::{frontier, leaf_at, make_node, rewrite, to_goal, PTree};
use std::collections::HashSet;
use std::sync::Arc;
use td_core::unify::{unify_args, unify_terms};
use td_core::{Goal, Program, Term};
use td_db::{Database, Delta};

/// Does `P, states ⊨ goal` hold? `states` must be non-empty; the execution
/// must start at `states\[0\]`, end at `states[n]`, and its i-th database
/// transition must be exactly `states[i] → states[i+1]`.
pub fn entails(program: &Program, states: &[Database], goal: &Goal) -> Result<bool, EngineError> {
    assert!(!states.is_empty(), "a path has at least one state");
    let mut visited = HashSet::new();
    search(program, states, make_node(goal), 0, &mut visited)
}

/// Convenience: build the state sequence a committed [`Delta`] induces from
/// `d0`, i.e. `⟨d0, d0+op₁, d0+op₁+op₂, …⟩`, and judge `goal` against it.
/// This is how the tests re-validate interpreter runs.
pub fn entails_via_delta(
    program: &Program,
    d0: &Database,
    delta: &Delta,
    goal: &Goal,
) -> Result<bool, EngineError> {
    let mut states = vec![d0.clone()];
    let mut cur = d0.clone();
    for op in delta.ops() {
        cur = op.apply(&cur).map_err(|e| EngineError::Db(e.to_string()))?;
        states.push(cur.clone());
    }
    entails(program, &states, goal)
}

type Cfg = (Option<Arc<PTree>>, usize);

fn search(
    program: &Program,
    states: &[Database],
    tree: Option<Arc<PTree>>,
    pos: usize,
    visited: &mut HashSet<(Goal, usize)>,
) -> Result<bool, EngineError> {
    let mut stack: Vec<Cfg> = vec![(tree, pos)];
    while let Some((tree, pos)) = stack.pop() {
        let Some(tree) = tree else {
            if pos == states.len() - 1 {
                return Ok(true);
            }
            continue;
        };
        if !visited.insert((canonical_goal(&to_goal(&tree)), pos)) {
            continue;
        }
        successors(program, states, &tree, pos, &mut stack, visited)?;
    }
    Ok(false)
}

fn successors(
    program: &Program,
    states: &[Database],
    tree: &Arc<PTree>,
    pos: usize,
    out: &mut Vec<Cfg>,
    visited: &mut HashSet<(Goal, usize)>,
) -> Result<(), EngineError> {
    let db = &states[pos];
    for path in frontier(tree) {
        let leaf = leaf_at(tree, &path).clone();
        match leaf {
            Goal::Fail => {}
            Goal::True | Goal::Seq(_) | Goal::Par(_) => {
                unreachable!("structural goals expanded by make_node")
            }
            Goal::Atom(atom) if program.is_base(atom.pred) => {
                // Query at the current state; the path does not advance.
                for t in matching_tuples(db, &atom) {
                    if let Some(new_tree) = apply_unification(tree, &path, None, |b| {
                        atom.args
                            .iter()
                            .zip(t.values())
                            .all(|(a, v)| unify_terms(b, *a, Term::Val(*v)))
                    }) {
                        out.push((new_tree, pos));
                    }
                }
            }
            Goal::Atom(atom) => {
                for &rid in program.rules_for(atom.pred) {
                    let rule = program.rule(rid);
                    let base = crate::kernel::num_vars_in_tree(tree);
                    let (head, body) = rule.rename_apart(base);
                    let replacement = make_node(&body);
                    if let Some(new_tree) =
                        apply_unification_n(tree, &path, replacement, base + rule.num_vars(), |b| {
                            unify_args(b, &atom.args, &head.args)
                        })
                    {
                        out.push((new_tree, pos));
                    }
                }
            }
            Goal::NotAtom(atom) => {
                if check_absent(db, &atom)? {
                    out.push((rewrite(tree, &path, None), pos));
                }
            }
            Goal::Ins(atom) | Goal::Del(atom) => {
                // An update must realize exactly the next transition.
                if pos + 1 >= states.len() {
                    continue;
                }
                let is_ins = matches!(leaf_at(tree, &path), Goal::Ins(_));
                let (next, _changed, _op) = apply_update(db, &atom, is_ins)?;
                if next.same_content(&states[pos + 1]) {
                    out.push((rewrite(tree, &path, None), pos + 1));
                }
            }
            Goal::Builtin(op, terms) => match eval_ground_builtin(op, &terms)? {
                BuiltinOut::Fails => {}
                BuiltinOut::Succeeds => out.push((rewrite(tree, &path, None), pos)),
                BuiltinOut::Binds(v, val) => {
                    let new_tree = rewrite(tree, &path, None).map(|t| subst_tree(&t, v, val));
                    out.push((new_tree, pos));
                }
            },
            Goal::Choice(branches) => {
                for b in &branches {
                    out.push((rewrite(tree, &path, make_node(b)), pos));
                }
            }
            Goal::Iso(inner) => {
                // ⊙inner must hold on a contiguous subpath starting at the
                // moment the block is scheduled: sequencing the whole
                // remaining tree after the block enforces exactly that, and
                // lets bindings made inside the block flow to the
                // continuation.
                let rest = rewrite(tree, &path, None);
                out.push((crate::tree::sequence(make_node(&inner), rest), pos));
                let _ = visited; // keep signature symmetric
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::load_init;
    use td_core::Pred;
    use td_db::tuple;
    use td_parser::{parse_goal, parse_program};

    fn setup(src: &str) -> (Program, Database) {
        let parsed = parse_program(src).expect("parses");
        let db = Database::with_schema_of(&parsed.program);
        let db = load_init(&db, &parsed.init).expect("init");
        (parsed.program, db)
    }

    fn goal(program: &Program, src: &str) -> Goal {
        parse_goal(src, program).expect("goal parses").goal
    }

    fn ins(db: &Database, pred: &str, t: td_db::Tuple) -> Database {
        let arity = u32::try_from(t.arity()).unwrap();
        db.insert(Pred::new(pred, arity), &t).unwrap().0
    }

    #[test]
    fn unit_path_query() {
        let (p, d0) = setup("base t/1. init t(1).");
        let g = goal(&p, "t(1)");
        assert!(entails(&p, std::slice::from_ref(&d0), &g).unwrap());
        let g2 = goal(&p, "t(2)");
        assert!(!entails(&p, &[d0], &g2).unwrap());
    }

    #[test]
    fn empty_goal_holds_only_on_unit_paths() {
        let (p, d0) = setup("base t/1.");
        let d1 = ins(&d0, "t", tuple!(1));
        assert!(entails(&p, std::slice::from_ref(&d0), &Goal::True).unwrap());
        assert!(!entails(&p, &[d0, d1], &Goal::True).unwrap());
    }

    #[test]
    fn insert_holds_on_exactly_its_transition() {
        let (p, d0) = setup("base t/1.");
        let d1 = ins(&d0, "t", tuple!(1));
        let g = goal(&p, "ins.t(1)");
        assert!(entails(&p, &[d0.clone(), d1.clone()], &g).unwrap());
        // wrong target state
        let d_wrong = ins(&d0, "t", tuple!(2));
        assert!(!entails(&p, &[d0.clone(), d_wrong], &g).unwrap());
        // no transition available
        assert!(!entails(&p, &[d0], &g).unwrap());
    }

    #[test]
    fn serial_composition_splits_the_path() {
        let (p, d0) = setup("base t/1.");
        let d1 = ins(&d0, "t", tuple!(1));
        let d2 = ins(&d1, "t", tuple!(2));
        let g = goal(&p, "ins.t(1) * ins.t(2)");
        assert!(entails(&p, &[d0.clone(), d1.clone(), d2.clone()], &g).unwrap());
        // Order is part of the judgment.
        let g_rev = goal(&p, "ins.t(2) * ins.t(1)");
        assert!(!entails(&p, &[d0, d1, d2], &g_rev).unwrap());
    }

    #[test]
    fn queries_hold_mid_path_without_advancing() {
        let (p, d0) = setup("base t/1.");
        let d1 = ins(&d0, "t", tuple!(1));
        let g = goal(&p, "ins.t(1) * t(1)");
        assert!(entails(&p, &[d0, d1], &g).unwrap());
    }

    #[test]
    fn concurrent_composition_interleaves() {
        // The paper's own example (§2): {} ⊨ (del.a del.b) | (ins.c ins.d)
        // on a path interleaving the two.
        let (p, empty) = setup("base a/0. base b/0. base c/0. base d/0.");
        let unit = td_db::Tuple::unit();
        let dab = ins(&ins(&empty, "a", unit.clone()), "b", unit.clone());
        // path: {a,b} -> {b} -> {b,c} -> {c} -> {c,d}
        let s1 = dab.delete(Pred::new("a", 0), &unit).unwrap().0;
        let s2 = ins(&s1, "c", unit.clone());
        let s3 = s2.delete(Pred::new("b", 0), &unit).unwrap().0;
        let s4 = ins(&s3, "d", unit.clone());
        let g = goal(&p, "(del.a * del.b) | (ins.c * ins.d)");
        let path = [dab.clone(), s1.clone(), s2.clone(), s3.clone(), s4.clone()];
        assert!(entails(&p, &path, &g).unwrap());
        // The purely serial goal cannot produce this interleaved path.
        let g_serial = goal(&p, "del.a * del.b * ins.c * ins.d");
        assert!(!entails(&p, &path, &g_serial).unwrap());
    }

    #[test]
    fn isolation_demands_contiguity() {
        let (p, empty) = setup("base a/0. base b/0. base c/0. base d/0.");
        let unit = td_db::Tuple::unit();
        // Interleaved path: a; c; b; d
        let s1 = ins(&empty, "a", unit.clone());
        let s2 = ins(&s1, "c", unit.clone());
        let s3 = ins(&s2, "b", unit.clone());
        let s4 = ins(&s3, "d", unit.clone());
        let interleaved = [
            empty.clone(),
            s1.clone(),
            s2.clone(),
            s3.clone(),
            s4.clone(),
        ];
        let free = goal(&p, "(ins.a * ins.b) | (ins.c * ins.d)");
        assert!(entails(&p, &interleaved, &free).unwrap());
        let isolated = goal(&p, "iso { ins.a * ins.b } | (ins.c * ins.d)");
        assert!(
            !entails(&p, &interleaved, &isolated).unwrap(),
            "iso block cannot be split by ins.c"
        );
        // Contiguous path: a; b; c; d — both hold.
        let t2 = ins(&s1, "b", unit.clone());
        let t3 = ins(&t2, "c", unit.clone());
        let t4 = ins(&t3, "d", unit.clone());
        let contiguous = [empty, s1, t2, t3, t4];
        assert!(entails(&p, &contiguous, &isolated).unwrap());
    }

    #[test]
    fn rules_unfold_in_judgments() {
        let (p, d0) = setup(
            "base t/1.
             put(X) <- ins.t(X).",
        );
        let d1 = ins(&d0, "t", tuple!(3));
        let g = goal(&p, "put(3)");
        assert!(entails(&p, &[d0, d1], &g).unwrap());
    }

    #[test]
    fn interpreter_runs_are_entailed() {
        // Differential test: whatever path the interpreter commits must be
        // entailed; a corrupted path must not be.
        let src = "
            base item/1. base done/2.
            init item(w1).
            workflow(W) <- t1(W) * (t2(W) | t3(W)).
            t1(W) <- item(W) * ins.done(W, t1).
            t2(W) <- ins.done(W, t2).
            t3(W) <- ins.done(W, t3).
            ?- workflow(w1).
        ";
        let parsed = parse_program(src).unwrap();
        let d0 = load_init(&Database::with_schema_of(&parsed.program), &parsed.init).unwrap();
        let engine = crate::Engine::new(parsed.program.clone());
        let g = parsed.goals[0].goal.clone();
        let sol = engine.solve(&g, &d0).unwrap();
        let delta = sol.solution().unwrap().delta.clone();
        assert!(entails_via_delta(&parsed.program, &d0, &delta, &g).unwrap());

        // Corrupt the path: drop the last op.
        let mut corrupted = Delta::new();
        for op in &delta.ops()[..delta.len() - 1] {
            corrupted.push(op.clone());
        }
        assert!(!entails_via_delta(&parsed.program, &d0, &corrupted, &g).unwrap());
    }

    #[test]
    fn redundant_update_keeps_state() {
        // ins of a present tuple: transition D -> D (state repeats).
        let (p, d0) = setup("base t/1. init t(1).");
        let g = goal(&p, "ins.t(1)");
        assert!(entails(&p, &[d0.clone(), d0.clone()], &g).unwrap());
        assert!(!entails(&p, &[d0], &g).unwrap());
    }
}

#[cfg(test)]
mod iso_binding_tests {
    use super::*;
    use crate::engine::load_init;
    use td_parser::parse_program;

    #[test]
    fn bindings_escape_isolation_blocks() {
        // A variable bound inside iso{..} is visible to the continuation —
        // the agent-claim idiom of Example 3.3. (Regression: an earlier
        // entailment implementation ran iso blocks as detached sub-searches
        // and lost the binding.)
        let src = "
            base avail/1. base used/1.
            init avail(a1). init avail(a2).
            claim <- iso { avail(A) * del.avail(A) } * ins.used(A).
            ?- claim.
        ";
        let parsed = parse_program(src).unwrap();
        let d0 = load_init(
            &td_db::Database::with_schema_of(&parsed.program),
            &parsed.init,
        )
        .unwrap();
        let engine = crate::Engine::new(parsed.program.clone());
        let goal = &parsed.goals[0].goal;
        let sol = engine.solve(goal, &d0).unwrap();
        let delta = sol.solution().unwrap().delta.clone();
        assert!(entails_via_delta(&parsed.program, &d0, &delta, goal).unwrap());
    }

    #[test]
    fn iso_still_rejects_non_contiguous_blocks_after_the_rework() {
        let (p, d0) = {
            let parsed = parse_program("base a/0. base b/0. base c/0.").unwrap();
            (
                parsed.program.clone(),
                td_db::Database::with_schema_of(&parsed.program),
            )
        };
        let unit = td_db::Tuple::unit();
        let s1 = d0.insert(td_core::Pred::new("a", 0), &unit).unwrap().0;
        let s2 = s1.insert(td_core::Pred::new("c", 0), &unit).unwrap().0;
        let s3 = s2.insert(td_core::Pred::new("b", 0), &unit).unwrap().0;
        let goal = td_parser::parse_goal("iso { ins.a * ins.b } | ins.c", &p)
            .unwrap()
            .goal;
        // a; c; b — the iso block is split by ins.c.
        assert!(!entails(&p, &[d0.clone(), s1.clone(), s2, s3], &goal).unwrap());
        // a; b; c — contiguous.
        let t2 = s1.insert(td_core::Pred::new("b", 0), &unit).unwrap().0;
        let t3 = t2.insert(td_core::Pred::new("c", 0), &unit).unwrap().0;
        assert!(entails(&p, &[d0, s1, t2, t3], &goal).unwrap());
    }
}
