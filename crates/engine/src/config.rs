//! Engine configuration, errors, and execution statistics.

use std::fmt;

/// How the engine explores interleavings of concurrent branches.
///
/// TD's concurrent composition `a | b` means *some* interleaving of `a` and
/// `b` executes; a goal is executable if at least one interleaving (together
/// with rule and tuple choices) succeeds. The strategy controls the order in
/// which interleavings are explored and whether scheduling decisions are
/// backtrackable.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Strategy {
    /// Depth-first over all scheduling choices, leftmost branch first.
    /// Complete for finite search spaces — this matches the Prolog prototype
    /// the paper's examples were tested on (\[55, 72\]).
    #[default]
    Exhaustive,
    /// Depth-first over all scheduling choices, but branch order is shuffled
    /// per step with the given seed. Complete, and gives every interleaving
    /// a chance — useful for randomized simulation runs that must still find
    /// a successful schedule (Examples 3.2–3.4).
    ExhaustiveRandom(u64),
    /// Fair round-robin rotation over concurrent branches with **no**
    /// backtracking on schedule (rule/tuple choices still backtrack). Fast
    /// for confluent workflow simulations, but incomplete: a goal that only
    /// succeeds under a specific schedule may fail.
    RoundRobin,
    /// Always step the leftmost live branch. Effectively serializes `|`
    /// left-to-right; used as an ablation baseline in the benchmarks.
    Leftmost,
}

impl Strategy {
    /// Does this strategy create scheduling choicepoints?
    pub fn backtracks_schedule(self) -> bool {
        matches!(self, Strategy::Exhaustive | Strategy::ExhaustiveRandom(_))
    }
}

/// Which search machinery runs the executability search.
///
/// This is orthogonal to [`Strategy`]: the strategy fixes the *semantic*
/// exploration order over interleavings, the backend fixes how the host
/// machine walks that space. TD's `|` is semantic concurrency — processes
/// interleave at elementary-step granularity regardless of backend — while
/// the parallel backend merely searches the interleaving space with several
/// OS threads at once.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SearchBackend {
    /// Single-threaded backtracking machine (the default; supports every
    /// strategy, tracing, and multi-solution enumeration).
    #[default]
    Sequential,
    /// Work-stealing multi-threaded search over the configuration graph.
    /// Used when the strategy is [`Strategy::Exhaustive`], tracing is off,
    /// and one solution is requested; the engine silently falls back to
    /// [`SearchBackend::Sequential`] otherwise (see `docs/PARALLELISM.md`).
    Parallel {
        /// Worker thread count (clamped to 1..=64).
        threads: usize,
        /// When set, the parallel search reports the *same* witness
        /// execution (answer, final database, delta) as the sequential
        /// exhaustive engine, at the cost of exploring past the first
        /// success to prove it lexicographically minimal.
        deterministic: bool,
    },
}

/// Engine limits and options.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Interleaving exploration strategy.
    pub strategy: Strategy,
    /// Abort after this many elementary steps (full TD is RE-complete —
    /// Theorem 4.1 — so a budget is the only way to guarantee termination).
    pub max_steps: u64,
    /// Abort if the choicepoint stack exceeds this depth.
    pub max_stack: usize,
    /// Record an execution trace (costs memory proportional to trace).
    pub trace: bool,
    /// Memoize refuted configurations (canonical process tree + database
    /// digest). When a configuration's whole search subtree has been
    /// explored without success, re-reaching it through a different
    /// interleaving fails immediately. This merges the interleaving lattice
    /// (many schedules pass through the same configurations) and is what
    /// keeps failure-heavy concurrent searches polynomial instead of
    /// exponential. Costs O(tree) per step and memory per refuted
    /// configuration. With `solutions(limit > 1)` it additionally
    /// deduplicates solutions that arise from re-reaching an already
    /// exhausted configuration.
    pub memo_failures: bool,
    /// Search machinery: sequential backtracking or the multi-threaded
    /// work-stealing configuration-graph search.
    pub backend: SearchBackend,
    /// Enable the shared subtransaction answer cache (TD tabling): isolated
    /// blocks and sole-frontier ground calls are memoized as
    /// `(bindings, state delta)` answer sets keyed by `(canonical subgoal,
    /// db digest)` and *replayed* on re-reaching the same state, instead of
    /// re-explored. Active only under [`Strategy::Exhaustive`] with tracing
    /// off (other strategies reorder the nested exploration; a trace cannot
    /// be replayed). See `docs/CACHING.md`.
    pub subgoal_cache: bool,
    /// Capacity bound (entries) for the subgoal cache; evicted with CLOCK
    /// second-chance when full.
    pub cache_capacity: usize,
    /// Materialize the Datalog-evaluable derived predicates as incrementally
    /// maintained counted relations: ground sole-frontier calls on them
    /// become indexed probes instead of rule unfoldings, and every committed
    /// base delta maintains the materialization in O(|delta|). Gated like
    /// the subgoal cache (inert under tracing and non-exhaustive
    /// strategies); a no-op when the program has no such predicates. See
    /// `docs/INCREMENTAL.md`.
    pub materialize: bool,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            strategy: Strategy::Exhaustive,
            max_steps: 10_000_000,
            max_stack: 1_000_000,
            trace: false,
            memo_failures: true,
            backend: SearchBackend::Sequential,
            subgoal_cache: false,
            cache_capacity: 65_536,
            materialize: false,
        }
    }
}

impl EngineConfig {
    /// Config with a step budget.
    pub fn with_max_steps(mut self, n: u64) -> EngineConfig {
        self.max_steps = n;
        self
    }

    /// Config with a strategy.
    pub fn with_strategy(mut self, s: Strategy) -> EngineConfig {
        self.strategy = s;
        self
    }

    /// Config with tracing enabled.
    pub fn with_trace(mut self) -> EngineConfig {
        self.trace = true;
        self
    }

    /// Config with a search backend.
    pub fn with_backend(mut self, b: SearchBackend) -> EngineConfig {
        self.backend = b;
        self
    }

    /// Config with the subgoal answer cache enabled.
    pub fn with_subgoal_cache(mut self) -> EngineConfig {
        self.subgoal_cache = true;
        self
    }

    /// Config with a subgoal-cache capacity bound (implies nothing about
    /// `subgoal_cache` itself — combine with [`Self::with_subgoal_cache`]).
    pub fn with_cache_capacity(mut self, n: usize) -> EngineConfig {
        self.cache_capacity = n.max(1);
        self
    }

    /// Config with incremental materialization enabled.
    pub fn with_materialize(mut self) -> EngineConfig {
        self.materialize = true;
        self
    }

    /// Config with the parallel backend at `threads` workers
    /// (nondeterministic witness; `threads <= 1` keeps the sequential
    /// backend).
    pub fn with_threads(mut self, threads: usize) -> EngineConfig {
        self.backend = if threads <= 1 {
            SearchBackend::Sequential
        } else {
            SearchBackend::Parallel {
                threads,
                deterministic: false,
            }
        };
        self
    }

    /// The configuration that will *actually* run, after the engine's
    /// gating rules are applied to this requested one:
    ///
    /// * the parallel backend serves only the exhaustive strategy with
    ///   tracing off — anything else falls back to sequential;
    /// * the subgoal cache is inert under tracing (a replayed macro-step
    ///   has no elementary events to record) and under non-exhaustive
    ///   strategies (they reorder the nested exploration).
    ///
    /// The run report echoes both the requested and this effective config,
    /// so silent gating is visible instead of a quiet semantics change.
    pub fn effective(&self) -> EngineConfig {
        let mut eff = self.clone();
        let exhaustive = matches!(self.strategy, Strategy::Exhaustive);
        if !exhaustive || self.trace {
            eff.backend = SearchBackend::Sequential;
            eff.subgoal_cache = false;
            eff.materialize = false;
        }
        if matches!(eff.backend, SearchBackend::Parallel { threads, .. } if threads <= 1) {
            eff.backend = SearchBackend::Sequential;
        }
        eff
    }
}

/// Fatal execution errors (distinct from *failure*, which is a normal
/// outcome meaning "no successful execution exists on the explored space").
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EngineError {
    /// An update, negation or builtin needed a ground term but got an
    /// unbound variable (a *floundering* execution — the program violates
    /// its intended modes).
    Instantiation { context: String },
    /// A comparison or arithmetic builtin was applied to a non-integer.
    Type { context: String },
    /// Integer overflow in an arithmetic builtin.
    Overflow { context: String },
    /// The step budget was exhausted before the search concluded.
    StepBudget { steps: u64 },
    /// The choicepoint stack exceeded its limit.
    StackBudget { depth: usize },
    /// Storage-level error (arity mismatch reaching the database layer —
    /// indicates a validation gap upstream).
    Db(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Instantiation { context } => {
                write!(
                    f,
                    "unbound variable where a ground term is required: {context}"
                )
            }
            EngineError::Type { context } => write!(f, "type error: {context}"),
            EngineError::Overflow { context } => write!(f, "integer overflow: {context}"),
            EngineError::StepBudget { steps } => {
                write!(f, "step budget exhausted after {steps} steps")
            }
            EngineError::StackBudget { depth } => {
                write!(f, "choicepoint stack exceeded {depth} entries")
            }
            EngineError::Db(msg) => write!(f, "database error: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Counters for one execution/search.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct Stats {
    /// Elementary steps taken (including backtracked ones).
    pub steps: u64,
    /// Backtracks performed.
    pub backtracks: u64,
    /// Choicepoints pushed.
    pub choicepoints: u64,
    /// Rule unfoldings.
    pub unfolds: u64,
    /// Database updates applied (including backtracked ones).
    pub db_ops: u64,
    /// Maximum choicepoint stack depth observed.
    pub max_stack: usize,
    /// Isolation blocks entered.
    pub iso_enters: u64,
    /// Steps avoided because the configuration was already refuted.
    pub memo_hits: u64,
    /// Peak number of concurrently schedulable actions (the paper's
    /// "number of processes": Example 3.2 grows this at runtime).
    pub peak_processes: usize,
    /// Subgoal-cache lookups that replayed a stored answer set.
    pub cache_hits: u64,
    /// Subgoal-cache lookups that found nothing (and enumerated).
    pub cache_misses: u64,
    /// Ground derived-predicate calls answered by a materialized-relation
    /// probe instead of rule unfolding.
    pub mat_probes: u64,
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "steps={} backtracks={} choicepoints={} unfolds={} db_ops={} max_stack={} iso={} memo_hits={}",
            self.steps,
            self.backtracks,
            self.choicepoints,
            self.unfolds,
            self.db_ops,
            self.max_stack,
            self.iso_enters,
            self.memo_hits
        )?;
        if self.cache_hits > 0 || self.cache_misses > 0 {
            write!(
                f,
                " cache_hits={} cache_misses={}",
                self.cache_hits, self.cache_misses
            )?;
        }
        if self.mat_probes > 0 {
            write!(f, " mat_probes={}", self.mat_probes)?;
        }
        write!(f, " peak_procs={}", self.peak_processes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_backtracking_classification() {
        assert!(Strategy::Exhaustive.backtracks_schedule());
        assert!(Strategy::ExhaustiveRandom(7).backtracks_schedule());
        assert!(!Strategy::RoundRobin.backtracks_schedule());
        assert!(!Strategy::Leftmost.backtracks_schedule());
    }

    #[test]
    fn config_builders() {
        let c = EngineConfig::default()
            .with_max_steps(500)
            .with_strategy(Strategy::RoundRobin)
            .with_trace();
        assert_eq!(c.max_steps, 500);
        assert_eq!(c.strategy, Strategy::RoundRobin);
        assert!(c.trace);
    }

    #[test]
    fn errors_display() {
        let e = EngineError::StepBudget { steps: 42 };
        assert!(e.to_string().contains("42"));
        let e = EngineError::Instantiation {
            context: "ins.p(_V3)".into(),
        };
        assert!(e.to_string().contains("ins.p(_V3)"));
    }
}
