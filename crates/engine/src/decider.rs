//! Explicit-state decision procedure for executability.
//!
//! The paper's complexity results (§4–§5) concern the *decision problem*
//! "is goal φ executable on database D?". For the decidable fragments —
//! sequential TD (Thm 4.5), nonrecursive TD (Thm 4.7) and fully bounded TD
//! (§5) — the space of reachable configurations `(process state, database)`
//! is finite, so executability is decidable by memoized graph search. This
//! module is that procedure.
//!
//! Unlike the backtracking [`crate::Engine`] (which re-explores shared
//! subspaces and may diverge on RE-hard programs), the decider visits each
//! distinct configuration once. The number of distinct configurations it
//! explores is exactly the quantity whose asymptotic growth the theorems
//! bound, and the benchmark harness reports it for each fragment
//! (EXPERIMENTS.md, E7–E9).
//!
//! Configurations are canonicalized up to variable renaming: free variables
//! are renumbered densely in first-occurrence order, so α-equivalent
//! process states memoize together. Databases are keyed by content digest
//! (128-bit, maintained incrementally — see `td_db::Database::digest`;
//! collisions are possible in principle but have probability ~2⁻¹²⁸ per
//! pair).
//!
//! With a [`SubgoalCache`] attached ([`decide_with_cache`] /
//! [`final_states_with_cache`]), isolated blocks and sole-frontier ground
//! calls become *macro-steps*: their cached `(bindings, delta)` answer sets
//! are replayed as direct successors instead of being re-explored, which
//! collapses the configuration chains inside contiguous subtransactions.

use crate::cache::{canonicalize_with_map, state_key, CacheEntry, StateKey, SubgoalCache};
use crate::config::EngineError;
use crate::obs::{subgoal_label, LocalMetrics, Observer};
use crate::trace::{ProbeOutcome, SpanPhase, TraceEvent};
use crate::tree::{frontier, leaf_at, make_node, rewrite, to_goal, PTree};
use std::collections::HashSet;
use std::sync::Arc;
use td_core::goal::Builtin;
use td_core::unify::{unify_args, unify_terms};
use td_core::{Bindings, Goal, Program, Term, Value, Var};
use td_db::{Database, Tuple};

/// Limits for a decision run.
#[derive(Clone, Copy, Debug)]
pub struct DeciderConfig {
    /// Stop after this many distinct configurations.
    pub max_configs: usize,
    /// Explore the whole reachable space even after finding success
    /// (needed when the *size* of the space is the measurement).
    pub exhaustive: bool,
}

impl Default for DeciderConfig {
    fn default() -> DeciderConfig {
        DeciderConfig {
            max_configs: 1_000_000,
            exhaustive: false,
        }
    }
}

/// The result of a decision run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Decision {
    /// Some successful execution exists (within the explored space).
    pub executable: bool,
    /// Distinct configurations visited.
    pub configs: usize,
    /// The budget was hit: `executable == false` then means "not found",
    /// not "impossible".
    pub truncated: bool,
}

/// Decide whether `goal` is executable on `db` under `program`.
///
/// ```
/// use td_engine::decider::{decide, DeciderConfig};
/// use td_parser::parse_program;
/// use td_db::Database;
///
/// // `loop <- loop` diverges in the interpreter, but the decider sees one
/// // repeated configuration and refutes it.
/// let parsed = parse_program("loop <- loop. ?- loop.").unwrap();
/// let db = Database::with_schema_of(&parsed.program);
/// let d = decide(&parsed.program, &parsed.goals[0].goal, &db, DeciderConfig::default()).unwrap();
/// assert!(!d.executable);
/// assert!(!d.truncated);
/// ```
pub fn decide(
    program: &Program,
    goal: &Goal,
    db: &Database,
    config: DeciderConfig,
) -> Result<Decision, EngineError> {
    decide_with_cache(program, goal, db, config, None)
}

/// [`decide`] with a shared subtransaction answer cache: isolated blocks
/// and sole-frontier ground calls are resolved by replaying cached
/// `(bindings, state delta)` answer sets (hit/miss/eviction counts are on
/// the cache itself). Pass `None` for the plain elementary-step search.
pub fn decide_with_cache(
    program: &Program,
    goal: &Goal,
    db: &Database,
    config: DeciderConfig,
    cache: Option<Arc<SubgoalCache>>,
) -> Result<Decision, EngineError> {
    decide_observed(program, goal, db, config, cache, None)
}

/// [`decide_with_cache`] with an observability sink attached: per-rule
/// expansion counts and per-subgoal cache tallies land in `obs.registry`
/// (under the `decider_configs` counter for the visited-configuration
/// count), and — when the observer carries an event log — the decision run
/// is bracketed by `solve` span events.
pub fn decide_observed(
    program: &Program,
    goal: &Goal,
    db: &Database,
    config: DeciderConfig,
    cache: Option<Arc<SubgoalCache>>,
    obs: Option<Arc<Observer>>,
) -> Result<Decision, EngineError> {
    if let Some(o) = &obs {
        o.emit(None, || TraceEvent::SpanEnter {
            phase: SpanPhase::Solve,
            detail: format!("decide {goal}"),
        });
    }
    let mut search = Search {
        program,
        config,
        visited: HashSet::new(),
        truncated: false,
        cache,
        local: LocalMetrics::new(obs.is_some()),
        obs: obs.clone(),
    };
    let executable = search.explore(make_node(goal), db.clone())?;
    let decision = Decision {
        executable,
        configs: search.visited.len(),
        truncated: search.truncated,
    };
    if let Some(o) = &obs {
        o.registry
            .absorb(program, &crate::config::Stats::default(), &search.local);
        o.registry
            .add_counter("decider_configs", decision.configs as u64);
        o.emit(None, || TraceEvent::SpanExit {
            phase: SpanPhase::Solve,
            detail: format!(
                "decide executable={} configs={}",
                decision.executable, decision.configs
            ),
        });
    }
    Ok(decision)
}

/// All final databases reachable by complete executions of `goal` on `db`
/// (deduplicated by content). Used for isolation blocks and by tests that
/// compare against the interpreter.
pub fn final_states(
    program: &Program,
    goal: &Goal,
    db: &Database,
    config: DeciderConfig,
) -> Result<Vec<Database>, EngineError> {
    final_states_with_cache(program, goal, db, config, None)
}

/// [`final_states`] with a shared subtransaction answer cache (see
/// [`decide_with_cache`]). The set of final databases is unchanged by
/// caching — only the number of intermediate configurations explored.
pub fn final_states_with_cache(
    program: &Program,
    goal: &Goal,
    db: &Database,
    config: DeciderConfig,
    cache: Option<Arc<SubgoalCache>>,
) -> Result<Vec<Database>, EngineError> {
    let mut search = Search {
        program,
        config,
        visited: HashSet::new(),
        truncated: false,
        cache,
        local: LocalMetrics::new(false),
        obs: None,
    };
    let mut finals = Vec::new();
    search.collect_finals(make_node(goal), db.clone(), &mut finals)?;
    Ok(finals)
}

/// The minimum number of elementary steps in any successful execution of
/// `goal` on `db`, found by breadth-first search over configurations —
/// `None` if the goal is unexecutable (within `config.max_configs`). A
/// useful workflow metric: the critical-path length of the shortest
/// schedule.
pub fn shortest_execution(
    program: &Program,
    goal: &Goal,
    db: &Database,
    config: DeciderConfig,
) -> Result<Option<usize>, EngineError> {
    // Uncached on purpose: a cached answer replay is a macro-step, which
    // would corrupt the BFS elementary-step count this function measures.
    let mut search = Search {
        program,
        config,
        visited: HashSet::new(),
        truncated: false,
        cache: None,
        local: LocalMetrics::new(false),
        obs: None,
    };
    let mut frontier: Vec<(Option<Arc<PTree>>, Database)> = vec![(make_node(goal), db.clone())];
    let mut depth = 0usize;
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for (tree, db) in frontier {
            let Some(tree) = tree else {
                return Ok(Some(depth));
            };
            if !search.mark_visited(&tree, &db) {
                continue;
            }
            if search.visited.len() >= search.config.max_configs {
                return Ok(None);
            }
            next.extend(search.successors(&tree, &db)?);
        }
        frontier = next;
        depth += 1;
    }
    Ok(None)
}

struct Search<'p> {
    program: &'p Program,
    config: DeciderConfig,
    visited: HashSet<StateKey>,
    truncated: bool,
    cache: Option<Arc<SubgoalCache>>,
    /// Per-run metric batch (rule expansions, cache tallies), absorbed by
    /// [`decide_observed`] when the run ends.
    local: LocalMetrics,
    obs: Option<Arc<Observer>>,
}

/// A configuration: live process tree (None = complete) + database.
type Config = (Option<Arc<PTree>>, Database);

impl<'p> Search<'p> {
    /// DFS for any complete execution. Returns true as soon as one is found
    /// (unless `exhaustive`).
    fn explore(&mut self, tree: Option<Arc<PTree>>, db: Database) -> Result<bool, EngineError> {
        let mut stack: Vec<Config> = vec![(tree, db)];
        let mut found = false;
        while let Some((tree, db)) = stack.pop() {
            let Some(tree) = tree else {
                found = true;
                if self.config.exhaustive {
                    continue;
                }
                return Ok(true);
            };
            if !self.mark_visited(&tree, &db) {
                continue;
            }
            if self.visited.len() >= self.config.max_configs {
                self.truncated = true;
                return Ok(found);
            }
            let succs = self.successors(&tree, &db)?;
            stack.extend(succs);
        }
        Ok(found)
    }

    /// DFS collecting every distinct final database.
    fn collect_finals(
        &mut self,
        tree: Option<Arc<PTree>>,
        db: Database,
        finals: &mut Vec<Database>,
    ) -> Result<(), EngineError> {
        let mut stack: Vec<Config> = vec![(tree, db)];
        while let Some((tree, db)) = stack.pop() {
            let Some(tree) = tree else {
                if !finals.iter().any(|d| d.same_content(&db)) {
                    finals.push(db);
                }
                continue;
            };
            if !self.mark_visited(&tree, &db) {
                continue;
            }
            if self.visited.len() >= self.config.max_configs {
                self.truncated = true;
                return Ok(());
            }
            let succs = self.successors(&tree, &db)?;
            stack.extend(succs);
        }
        Ok(())
    }

    fn mark_visited(&mut self, tree: &Arc<PTree>, db: &Database) -> bool {
        self.visited.insert(state_key(&to_goal(tree), db))
    }

    /// Every configuration reachable in one elementary step, across all
    /// schedules and all nondeterministic choices.
    fn successors(&mut self, tree: &Arc<PTree>, db: &Database) -> Result<Vec<Config>, EngineError> {
        let mut out = Vec::new();
        let paths = frontier(tree);
        // A sole frontier action executes as a contiguous block — the
        // cacheability condition for derived-atom calls (shared with the
        // machine and the parallel backend).
        let sole = paths.len() == 1;
        for path in paths {
            let leaf = leaf_at(tree, &path).clone();
            match leaf {
                Goal::Fail => {}
                Goal::True | Goal::Seq(_) | Goal::Par(_) => {
                    unreachable!("structural goals expanded by make_node")
                }
                Goal::Atom(atom) if self.program.is_base(atom.pred) => {
                    let Some(rel) = db.relation(atom.pred) else {
                        continue;
                    };
                    let pattern: Vec<Option<Value>> =
                        atom.args.iter().map(|t| t.as_value()).collect();
                    // `select` returns tuples in sorted (lexicographic)
                    // order in every regime; no re-sort needed.
                    for t in rel.select(&pattern) {
                        if let Some(new_tree) = apply_unification(tree, &path, None, |b| {
                            atom.args
                                .iter()
                                .zip(t.values())
                                .all(|(a, v)| unify_terms(b, *a, Term::Val(*v)))
                        }) {
                            out.push((new_tree, db.clone()));
                        }
                    }
                }
                Goal::Atom(atom) => {
                    let cached = if sole && atom.is_ground() {
                        self.cached_successors(&Goal::Atom(atom.clone()), tree, &path, db)?
                    } else {
                        None
                    };
                    if let Some(succs) = cached {
                        out.extend(succs);
                        continue;
                    }
                    for &rid in self.program.rules_for(atom.pred) {
                        let rule = self.program.rule(rid);
                        let base = num_vars_in_tree(tree);
                        let (head, body) = rule.rename_apart(base);
                        let replacement = make_node(&body);
                        if let Some(new_tree) = apply_unification_n(
                            tree,
                            &path,
                            replacement,
                            base + rule.num_vars(),
                            |b| unify_args(b, &atom.args, &head.args),
                        ) {
                            self.local.observe_unfold(rid);
                            out.push((new_tree, db.clone()));
                        }
                    }
                }
                Goal::NotAtom(atom) => {
                    if !atom.is_ground() {
                        return Err(EngineError::Instantiation {
                            context: format!("not {atom}"),
                        });
                    }
                    if !db.holds(&atom) {
                        out.push((rewrite(tree, &path, None), db.clone()));
                    }
                }
                Goal::Ins(atom) | Goal::Del(atom) => {
                    let is_ins = matches!(leaf_at(tree, &path), Goal::Ins(_));
                    let Some(values) = atom.ground_args() else {
                        return Err(EngineError::Instantiation {
                            context: format!("update on {atom}"),
                        });
                    };
                    let t = Tuple::new(values);
                    let next = if is_ins {
                        db.insert(atom.pred, &t)
                    } else {
                        db.delete(atom.pred, &t)
                    }
                    .map_err(|e| EngineError::Db(e.to_string()))?
                    .0;
                    out.push((rewrite(tree, &path, None), next));
                }
                Goal::Builtin(op, terms) => match eval_ground_builtin(op, &terms)? {
                    BuiltinOut::Fails => {}
                    BuiltinOut::Succeeds => {
                        out.push((rewrite(tree, &path, None), db.clone()));
                    }
                    BuiltinOut::Binds(v, val) => {
                        let new_tree = rewrite(tree, &path, None).map(|t| subst_tree(&t, v, val));
                        out.push((new_tree, db.clone()));
                    }
                },
                Goal::Choice(branches) => {
                    for b in &branches {
                        out.push((rewrite(tree, &path, make_node(b)), db.clone()));
                    }
                }
                Goal::Iso(inner) => {
                    // Isolated block: committing to start it means nothing
                    // else runs until it completes — i.e. the whole
                    // remaining tree is sequenced after it. (Schedules
                    // where the block starts later arise from stepping the
                    // other frontier actions first.) Variable bindings made
                    // inside the block flow to the continuation because it
                    // is one tree.
                    match self.cached_successors(&inner, tree, &path, db)? {
                        Some(succs) => out.extend(succs),
                        None => {
                            let rest = rewrite(tree, &path, None);
                            out.push((crate::tree::sequence(make_node(&inner), rest), db.clone()));
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// Probe (and on miss, populate) the subgoal cache for a contiguous
    /// subgoal, producing the macro-step successor configurations — one per
    /// cached answer, with the answer's bindings applied to the rest of the
    /// tree and its delta replayed onto the database. Returns `Ok(None)`
    /// when the cache is off or the subgoal is unsuitable for caching, in
    /// which case the caller must fall back to the elementary-step path.
    fn cached_successors(
        &mut self,
        subgoal: &Goal,
        tree: &Arc<PTree>,
        path: &[usize],
        db: &Database,
    ) -> Result<Option<Vec<Config>>, EngineError> {
        let Some(cache) = self.cache.clone() else {
            return Ok(None);
        };
        let (canon, vars) = canonicalize_with_map(subgoal);
        let label = subgoal_label(subgoal);
        let probe = |search: &mut Search<'_>, outcome: ProbeOutcome| {
            search.local.observe_cache(&label, outcome);
            if let Some(o) = &search.obs {
                o.emit(None, || TraceEvent::CacheProbe {
                    subgoal: label.clone(),
                    outcome,
                });
            }
        };
        let key = (canon, db.digest());
        let answers = match cache.lookup(&key) {
            Some(CacheEntry::Answers(a)) => {
                probe(self, ProbeOutcome::Hit);
                a
            }
            Some(CacheEntry::Unsuitable) => {
                probe(self, ProbeOutcome::Unsuitable);
                return Ok(None);
            }
            None => {
                match crate::machine::enumerate_answers(self.program, &key.0, vars.len() as u32, db)
                {
                    Some(list) => {
                        probe(self, ProbeOutcome::Miss);
                        let arc = Arc::new(list);
                        cache.insert(key, CacheEntry::Answers(arc.clone()));
                        arc
                    }
                    None => {
                        probe(self, ProbeOutcome::Unsuitable);
                        cache.insert(key, CacheEntry::Unsuitable);
                        return Ok(None);
                    }
                }
            }
        };
        let mut out = Vec::with_capacity(answers.len());
        for ans in answers.iter() {
            if let Some(new_tree) = apply_unification(tree, path, None, |b| {
                vars.iter()
                    .zip(&ans.values)
                    .all(|(v, val)| unify_terms(b, Term::Var(*v), Term::Val(*val)))
            }) {
                let next = ans
                    .delta
                    .replay(db)
                    .map_err(|e| EngineError::Db(e.to_string()))?;
                out.push((new_tree, next));
            }
        }
        Ok(Some(out))
    }
}

/// Unify under a scratch binding store sized for the tree's variables, then
/// substitute the solution through the rewritten tree.
pub(crate) fn apply_unification(
    tree: &Arc<PTree>,
    path: &[usize],
    replacement: Option<Arc<PTree>>,
    unifier: impl FnOnce(&mut Bindings) -> bool,
) -> Option<Option<Arc<PTree>>> {
    let n = num_vars_in_tree(tree);
    apply_unification_n(tree, path, replacement, n, unifier)
}

pub(crate) fn apply_unification_n(
    tree: &Arc<PTree>,
    path: &[usize],
    replacement: Option<Arc<PTree>>,
    nvars: u32,
    unifier: impl FnOnce(&mut Bindings) -> bool,
) -> Option<Option<Arc<PTree>>> {
    let mut b = Bindings::new();
    b.alloc(nvars);
    if !unifier(&mut b) {
        return None;
    }
    let rewritten = rewrite(tree, path, replacement);
    Some(rewritten.map(|t| apply_bindings_tree(&t, &b)))
}

/// Variables in a tree: max id + 1.
pub(crate) fn num_vars_in_tree(tree: &Arc<PTree>) -> u32 {
    to_goal(tree)
        .vars()
        .into_iter()
        .map(|Var(i)| i + 1)
        .max()
        .unwrap_or(0)
}

pub(crate) fn apply_bindings_tree(tree: &Arc<PTree>, b: &Bindings) -> Arc<PTree> {
    map_tree(tree, &mut |t| b.resolve(t))
}

pub(crate) fn subst_tree(tree: &Arc<PTree>, v: Var, val: Term) -> Arc<PTree> {
    map_tree(tree, &mut |t| if t == Term::Var(v) { val } else { t })
}

pub(crate) fn map_tree(tree: &Arc<PTree>, f: &mut impl FnMut(Term) -> Term) -> Arc<PTree> {
    match &**tree {
        PTree::Lit(g) => Arc::new(PTree::Lit(g.map_terms(f))),
        PTree::Seq(cs) => Arc::new(PTree::Seq(cs.iter().map(|c| map_tree(c, f)).collect())),
        PTree::Par(cs) => Arc::new(PTree::Par(cs.iter().map(|c| map_tree(c, f)).collect())),
    }
}

pub(crate) enum BuiltinOut {
    Fails,
    Succeeds,
    Binds(Var, Term),
}

/// Builtins in the decider work over (mostly) ground configurations:
/// comparisons demand ground integers; `=` may bind one free variable;
/// arithmetic may bind its output.
pub(crate) fn eval_ground_builtin(op: Builtin, terms: &[Term]) -> Result<BuiltinOut, EngineError> {
    let ground_int = |t: Term| -> Result<i64, EngineError> {
        match t {
            Term::Val(Value::Int(i)) => Ok(i),
            Term::Val(v) => Err(EngineError::Type {
                context: format!("`{v}` in `{}`", op.op_str()),
            }),
            Term::Var(v) => Err(EngineError::Instantiation {
                context: format!("`{v}` in `{}`", op.op_str()),
            }),
        }
    };
    match op {
        Builtin::Eq => match (terms[0], terms[1]) {
            (Term::Val(a), Term::Val(b)) => Ok(if a == b {
                BuiltinOut::Succeeds
            } else {
                BuiltinOut::Fails
            }),
            (Term::Var(v), t @ Term::Val(_)) | (t @ Term::Val(_), Term::Var(v)) => {
                Ok(BuiltinOut::Binds(v, t))
            }
            (Term::Var(a), Term::Var(b)) => {
                if a == b {
                    Ok(BuiltinOut::Succeeds)
                } else {
                    Ok(BuiltinOut::Binds(a, Term::Var(b)))
                }
            }
        },
        Builtin::Ne => match (terms[0], terms[1]) {
            (Term::Val(a), Term::Val(b)) => Ok(if a != b {
                BuiltinOut::Succeeds
            } else {
                BuiltinOut::Fails
            }),
            (a, b) => Err(EngineError::Instantiation {
                context: format!("`{a} != {b}`"),
            }),
        },
        Builtin::Lt | Builtin::Le | Builtin::Gt | Builtin::Ge => {
            let a = ground_int(terms[0])?;
            let b = ground_int(terms[1])?;
            let ok = match op {
                Builtin::Lt => a < b,
                Builtin::Le => a <= b,
                Builtin::Gt => a > b,
                Builtin::Ge => a >= b,
                _ => unreachable!(),
            };
            Ok(if ok {
                BuiltinOut::Succeeds
            } else {
                BuiltinOut::Fails
            })
        }
        Builtin::Add | Builtin::Sub | Builtin::Mul => {
            let a = ground_int(terms[0])?;
            let b = ground_int(terms[1])?;
            let r = match op {
                Builtin::Add => a.checked_add(b),
                Builtin::Sub => a.checked_sub(b),
                Builtin::Mul => a.checked_mul(b),
                _ => unreachable!(),
            }
            .ok_or_else(|| EngineError::Overflow {
                context: format!("{a} {} {b}", op.op_str()),
            })?;
            match terms[2] {
                Term::Var(v) => Ok(BuiltinOut::Binds(v, Term::int(r))),
                Term::Val(c) => Ok(if c == Value::Int(r) {
                    BuiltinOut::Succeeds
                } else {
                    BuiltinOut::Fails
                }),
            }
        }
    }
}

/// Rename variables densely in first-occurrence order, making α-equivalent
/// goals structurally equal.
pub fn canonical_goal(goal: &Goal) -> Goal {
    let mut map: Vec<(Var, u32)> = Vec::new();
    goal.map_terms(&mut |t| match t {
        Term::Var(v) => {
            let id = match map.iter().find(|(w, _)| *w == v) {
                Some((_, id)) => *id,
                None => {
                    let id = u32::try_from(map.len()).expect("var count overflow");
                    map.push((v, id));
                    id
                }
            };
            Term::var(id)
        }
        other => other,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::load_init;
    use td_parser::parse_program;

    fn setup(src: &str) -> (td_core::Program, Database, Vec<Goal>) {
        let parsed = parse_program(src).expect("parses");
        let db = Database::with_schema_of(&parsed.program);
        let db = load_init(&db, &parsed.init).expect("init");
        let goals = parsed.goals.iter().map(|g| g.goal.clone()).collect();
        (parsed.program, db, goals)
    }

    fn run(src: &str) -> Decision {
        let (p, db, goals) = setup(src);
        decide(&p, &goals[0], &db, DeciderConfig::default()).expect("decides")
    }

    #[test]
    fn trivial_success_and_failure() {
        assert!(run("base t/0. ?- ins.t.").executable);
        assert!(!run("base t/0. ?- t.").executable);
        assert!(!run("base t/0. ?- fail.").executable);
    }

    #[test]
    fn serial_order_is_respected() {
        assert!(!run("base t/0. ?- t * ins.t.").executable);
        assert!(run("base t/0. ?- ins.t * t.").executable);
    }

    #[test]
    fn concurrent_communication_found() {
        let d = run("base m/0. base d/0. c <- m * ins.d. p <- ins.m. ?- c | p.");
        assert!(d.executable);
    }

    #[test]
    fn isolation_semantics_match_engine() {
        let src = "
            base flag/0. base saw/0.
            right <- flag * ins.saw.
            ?- iso { ins.flag * del.flag } | right.
        ";
        assert!(!run(src).executable);
        let src2 = "
            base flag/0. base saw/0.
            right <- flag * ins.saw.
            ?- (ins.flag * del.flag) | right.
        ";
        assert!(run(src2).executable);
    }

    #[test]
    fn nonterminating_recursion_is_decided_by_memoization() {
        // loop <- loop diverges in the interpreter, but the decider sees a
        // single repeated configuration and terminates with "not executable".
        let d = run("loop <- loop. ?- loop.");
        assert!(!d.executable);
        assert!(!d.truncated);
        assert!(
            d.configs <= 3,
            "tiny configuration space, got {}",
            d.configs
        );
    }

    #[test]
    fn tail_recursive_loop_with_exit_is_executable() {
        let d = run("base t/0.
             loop <- { ins.t or loop }.
             ?- loop.");
        assert!(d.executable);
        assert!(!d.truncated);
    }

    #[test]
    fn countdown_explores_linear_space() {
        let src = |n: i64| {
            format!(
                "base n/1. init n({n}).
                 down <- n(0).
                 down <- n(X) * X > 0 * del.n(X) * Y is X - 1 * ins.n(Y) * down.
                 ?- down."
            )
        };
        let d5 = run(&src(5));
        let d10 = run(&src(10));
        assert!(d5.executable && d10.executable);
        assert!(d10.configs > d5.configs);
        // Linear-ish growth: doubling n should not square the space.
        assert!(d10.configs < d5.configs * 4);
    }

    #[test]
    fn exhaustive_mode_counts_the_whole_space() {
        let (p, db, goals) = setup("base a/0. base b/0. ?- ins.a | ins.b.");
        let d = decide(
            &p,
            &goals[0],
            &db,
            DeciderConfig {
                exhaustive: true,
                ..DeciderConfig::default()
            },
        )
        .unwrap();
        assert!(d.executable);
        assert!(d.configs >= 3, "got {}", d.configs);
    }

    #[test]
    fn budget_truncates() {
        let (p, db, goals) = setup(
            "base n/1. init n(100).
             down <- n(0).
             down <- n(X) * X > 0 * del.n(X) * Y is X - 1 * ins.n(Y) * down.
             ?- down.",
        );
        let d = decide(
            &p,
            &goals[0],
            &db,
            DeciderConfig {
                max_configs: 10,
                exhaustive: false,
            },
        )
        .unwrap();
        assert!(d.truncated);
        assert!(!d.executable);
    }

    #[test]
    fn final_states_enumerates_outcomes() {
        let (p, db, goals) = setup(
            "base t/1.
             pick <- { ins.t(1) or ins.t(2) }.
             ?- pick.",
        );
        let finals = final_states(&p, &goals[0], &db, DeciderConfig::default()).unwrap();
        assert_eq!(finals.len(), 2);
    }

    #[test]
    fn canonical_goal_identifies_alpha_equivalent() {
        let g1 = Goal::atom("p", vec![Term::var(3), Term::var(7), Term::var(3)]);
        let g2 = Goal::atom("p", vec![Term::var(9), Term::var(2), Term::var(9)]);
        assert_eq!(canonical_goal(&g1), canonical_goal(&g2));
        let g3 = Goal::atom("p", vec![Term::var(1), Term::var(2), Term::var(2)]);
        assert_ne!(canonical_goal(&g1), canonical_goal(&g3));
    }

    #[test]
    fn agreement_with_interpreter_on_small_programs() {
        let cases = [
            "base t/0. ?- ins.t * del.t * not t.",
            "base a/0. base b/0. ?- (a | ins.a) * b.",
            "base a/0. base b/0. ?- (a | ins.a) * ins.b * b.",
            "base a/0. p <- a. p <- ins.a. ?- p * a.",
            "base a/0. base b/0. ?- iso { ins.a * del.a } * a.",
            "base m/0. base d/0. c <- m * ins.d. ?- c | ins.m.",
        ];
        for src in cases {
            let (p, db, goals) = setup(src);
            let engine = crate::Engine::new(p.clone());
            let eng = engine.executable(&goals[0], &db).unwrap();
            let dec = decide(&p, &goals[0], &db, DeciderConfig::default())
                .unwrap()
                .executable;
            assert_eq!(eng, dec, "mismatch on: {src}");
        }
    }
}

#[cfg(test)]
mod shortest_tests {
    use super::*;
    use crate::engine::load_init;
    use td_parser::parse_program;

    fn shortest(src: &str) -> Option<usize> {
        let parsed = parse_program(src).unwrap();
        let db = Database::with_schema_of(&parsed.program);
        let db = load_init(&db, &parsed.init).unwrap();
        shortest_execution(
            &parsed.program,
            &parsed.goals[0].goal,
            &db,
            DeciderConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn counts_elementary_steps() {
        assert_eq!(shortest("base t/0. ?- ins.t."), Some(1));
        assert_eq!(shortest("base t/0. ?- ins.t * t * del.t."), Some(3));
        assert_eq!(shortest("base t/0. ?- t."), None);
    }

    #[test]
    fn choice_takes_the_shorter_branch() {
        // One branch needs 1 step, the other 3: BFS reports 2 (choice
        // resolution is itself a step).
        let n = shortest(
            "base t/1.
             ?- { ins.t(1) or (ins.t(1) * ins.t(2) * ins.t(3)) }.",
        );
        assert_eq!(n, Some(2));
    }

    #[test]
    fn concurrent_steps_still_count_individually() {
        // Interleaving does not shorten total work: 2 inserts = 2 steps.
        assert_eq!(shortest("base a/0. base b/0. ?- ins.a | ins.b."), Some(2));
    }

    #[test]
    fn unfolds_count_as_steps() {
        // call -> unfold (1) -> ins (1)
        assert_eq!(shortest("base t/0. p <- ins.t. ?- p."), Some(2));
    }

    #[test]
    fn workflow_critical_path() {
        // Example 3.1-shaped: unfoldings + queries + 5 inserts; the exact
        // number is stable and small.
        let n = shortest(
            "base item/1. base done/2.
             init item(w1).
             wf(W) <- t1(W) * (t2(W) | t3(W)).
             t1(W) <- item(W) * ins.done(W, a).
             t2(W) <- ins.done(W, b).
             t3(W) <- ins.done(W, c).
             ?- wf(w1).",
        );
        // wf unfold + t1 unfold + item query + ins + t2/t3 unfolds + 2 ins = 8
        assert_eq!(n, Some(8));
    }
}

#[cfg(test)]
mod state_space_tests {
    use super::*;
    use crate::engine::load_init;
    use td_parser::parse_program;

    fn explore(src: &str) -> Decision {
        let parsed = parse_program(src).unwrap();
        let db = load_init(&Database::with_schema_of(&parsed.program), &parsed.init).unwrap();
        decide(
            &parsed.program,
            &parsed.goals[0].goal,
            &db,
            DeciderConfig {
                exhaustive: true,
                ..DeciderConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn configuration_space_is_exactly_3n_minus_1_for_toggle_products() {
        // n independent insert/delete toggles: each branch contributes 3
        // live configurations (about to insert / about to delete / done),
        // and the product minus the all-done terminal gives 3^n - 1 — the
        // state explosion the paper's complexity results quantify, here in
        // closed form.
        let cfg = |n: usize| {
            let branches: Vec<String> = (0..n).map(|i| format!("(ins.f{i} * del.f{i})")).collect();
            let decls: Vec<String> = (0..n).map(|i| format!("base f{i}/0.")).collect();
            format!("{}\n?- {}.", decls.join("\n"), branches.join(" | "))
        };
        for n in 1..=5usize {
            let d = explore(&cfg(n));
            assert_eq!(d.configs, 3usize.pow(n as u32) - 1, "n={n}");
            assert!(d.executable);
        }
    }
}
