//! Explicit-state decision procedure for executability.
//!
//! The paper's complexity results (§4–§5) concern the *decision problem*
//! "is goal φ executable on database D?". For the decidable fragments —
//! sequential TD (Thm 4.5), nonrecursive TD (Thm 4.7) and fully bounded TD
//! (§5) — the space of reachable configurations `(process state, database)`
//! is finite, so executability is decidable by memoized graph search. This
//! module is that procedure.
//!
//! Unlike the backtracking [`crate::Engine`] (which re-explores shared
//! subspaces and may diverge on RE-hard programs), the decider visits each
//! distinct configuration once. The number of distinct configurations it
//! explores is exactly the quantity whose asymptotic growth the theorems
//! bound, and the benchmark harness reports it for each fragment
//! (EXPERIMENTS.md, E7–E9).
//!
//! Configurations are canonicalized up to variable renaming: free variables
//! are renumbered densely in first-occurrence order, so α-equivalent
//! process states memoize together. Databases are keyed by content digest
//! (128-bit, maintained incrementally — see `td_db::Database::digest`;
//! collisions are possible in principle but have probability ~2⁻¹²⁸ per
//! pair).
//!
//! With a [`SubgoalCache`] attached ([`decide_with_cache`] /
//! [`final_states_with_cache`]), isolated blocks and sole-frontier ground
//! calls become *macro-steps*: their cached `(bindings, delta)` answer sets
//! are replayed as direct successors instead of being re-explored, which
//! collapses the configuration chains inside contiguous subtransactions.

use crate::cache::{state_key, StateKey, SubgoalCache};
use crate::config::{EngineError, Stats};
use crate::incremental::Materializer;
use crate::kernel::{Config as StepConfig, Hooks, Kernel};
use crate::obs::{LocalMetrics, Observer};
use crate::trace::{SpanPhase, TraceEvent};
use crate::tree::{make_node, to_goal, PTree};
use std::collections::HashSet;
use std::sync::Arc;
use td_core::{Goal, Program, Term, Var};
use td_db::Database;

/// Limits for a decision run.
#[derive(Clone, Copy, Debug)]
pub struct DeciderConfig {
    /// Stop after this many distinct configurations.
    pub max_configs: usize,
    /// Explore the whole reachable space even after finding success
    /// (needed when the *size* of the space is the measurement).
    pub exhaustive: bool,
}

impl Default for DeciderConfig {
    fn default() -> DeciderConfig {
        DeciderConfig {
            max_configs: 1_000_000,
            exhaustive: false,
        }
    }
}

/// The result of a decision run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Decision {
    /// Some successful execution exists (within the explored space).
    pub executable: bool,
    /// Distinct configurations visited.
    pub configs: usize,
    /// The budget was hit: `executable == false` then means "not found",
    /// not "impossible".
    pub truncated: bool,
}

/// Decide whether `goal` is executable on `db` under `program`.
///
/// ```
/// use td_engine::decider::{decide, DeciderConfig};
/// use td_parser::parse_program;
/// use td_db::Database;
///
/// // `loop <- loop` diverges in the interpreter, but the decider sees one
/// // repeated configuration and refutes it.
/// let parsed = parse_program("loop <- loop. ?- loop.").unwrap();
/// let db = Database::with_schema_of(&parsed.program);
/// let d = decide(&parsed.program, &parsed.goals[0].goal, &db, DeciderConfig::default()).unwrap();
/// assert!(!d.executable);
/// assert!(!d.truncated);
/// ```
pub fn decide(
    program: &Program,
    goal: &Goal,
    db: &Database,
    config: DeciderConfig,
) -> Result<Decision, EngineError> {
    decide_with_cache(program, goal, db, config, None)
}

/// [`decide`] with a shared subtransaction answer cache: isolated blocks
/// and sole-frontier ground calls are resolved by replaying cached
/// `(bindings, state delta)` answer sets (hit/miss/eviction counts are on
/// the cache itself). Pass `None` for the plain elementary-step search.
pub fn decide_with_cache(
    program: &Program,
    goal: &Goal,
    db: &Database,
    config: DeciderConfig,
    cache: Option<Arc<SubgoalCache>>,
) -> Result<Decision, EngineError> {
    decide_observed(program, goal, db, config, cache, None)
}

/// [`decide_with_cache`] with an observability sink attached: per-rule
/// expansion counts and per-subgoal cache tallies land in `obs.registry`
/// (under the `decider_configs` counter for the visited-configuration
/// count), and — when the observer carries an event log — the decision run
/// is bracketed by `solve` span events.
pub fn decide_observed(
    program: &Program,
    goal: &Goal,
    db: &Database,
    config: DeciderConfig,
    cache: Option<Arc<SubgoalCache>>,
    obs: Option<Arc<Observer>>,
) -> Result<Decision, EngineError> {
    decide_materialized(program, goal, db, config, cache, None, obs)
}

/// [`decide_observed`] with an incremental materializer attached: ground
/// sole-frontier calls on materialized derived predicates are answered by an
/// indexed probe, and every update action maintains the materialized state
/// from the committed delta (see `docs/INCREMENTAL.md`).
pub fn decide_materialized(
    program: &Program,
    goal: &Goal,
    db: &Database,
    config: DeciderConfig,
    cache: Option<Arc<SubgoalCache>>,
    mat: Option<Arc<Materializer>>,
    obs: Option<Arc<Observer>>,
) -> Result<Decision, EngineError> {
    if let Some(o) = &obs {
        o.emit(None, || TraceEvent::SpanEnter {
            phase: SpanPhase::Solve,
            detail: format!("decide {goal}"),
        });
    }
    let mut search = Search {
        kernel: Kernel {
            program,
            cache,
            mat,
        },
        config,
        visited: HashSet::new(),
        truncated: false,
        local: LocalMetrics::new(obs.is_some()),
        reads: td_db::ReadSet::new(),
        obs: obs.clone(),
    };
    let executable = search.explore(make_node(goal), db.clone())?;
    let decision = Decision {
        executable,
        configs: search.visited.len(),
        truncated: search.truncated,
    };
    if let Some(o) = &obs {
        o.registry
            .absorb(program, &crate::config::Stats::default(), &search.local);
        o.registry
            .add_counter("decider_configs", decision.configs as u64);
        o.emit(None, || TraceEvent::SpanExit {
            phase: SpanPhase::Solve,
            detail: format!(
                "decide executable={} configs={}",
                decision.executable, decision.configs
            ),
        });
    }
    Ok(decision)
}

/// All final databases reachable by complete executions of `goal` on `db`
/// (deduplicated by content). Used for isolation blocks and by tests that
/// compare against the interpreter.
pub fn final_states(
    program: &Program,
    goal: &Goal,
    db: &Database,
    config: DeciderConfig,
) -> Result<Vec<Database>, EngineError> {
    final_states_with_cache(program, goal, db, config, None)
}

/// [`final_states`] with a shared subtransaction answer cache (see
/// [`decide_with_cache`]). The set of final databases is unchanged by
/// caching — only the number of intermediate configurations explored.
pub fn final_states_with_cache(
    program: &Program,
    goal: &Goal,
    db: &Database,
    config: DeciderConfig,
    cache: Option<Arc<SubgoalCache>>,
) -> Result<Vec<Database>, EngineError> {
    final_states_materialized(program, goal, db, config, cache, None)
}

/// [`final_states_with_cache`] with an incremental materializer (see
/// [`decide_materialized`]). The set of final databases is unchanged —
/// materialized probes are pure-query macro-steps.
pub fn final_states_materialized(
    program: &Program,
    goal: &Goal,
    db: &Database,
    config: DeciderConfig,
    cache: Option<Arc<SubgoalCache>>,
    mat: Option<Arc<Materializer>>,
) -> Result<Vec<Database>, EngineError> {
    let mut search = Search {
        kernel: Kernel {
            program,
            cache,
            mat,
        },
        config,
        visited: HashSet::new(),
        truncated: false,
        local: LocalMetrics::new(false),
        reads: td_db::ReadSet::new(),
        obs: None,
    };
    let mut finals = Vec::new();
    search.collect_finals(make_node(goal), db.clone(), &mut finals)?;
    Ok(finals)
}

/// The minimum number of elementary steps in any successful execution of
/// `goal` on `db`, found by breadth-first search over configurations —
/// `None` if the goal is unexecutable (within `config.max_configs`). A
/// useful workflow metric: the critical-path length of the shortest
/// schedule.
pub fn shortest_execution(
    program: &Program,
    goal: &Goal,
    db: &Database,
    config: DeciderConfig,
) -> Result<Option<usize>, EngineError> {
    // Uncached and unmaterialized on purpose: a cached answer replay or a
    // materialized probe is a macro-step, which would corrupt the BFS
    // elementary-step count this function measures.
    let mut search = Search {
        kernel: Kernel {
            program,
            cache: None,
            mat: None,
        },
        config,
        visited: HashSet::new(),
        truncated: false,
        local: LocalMetrics::new(false),
        reads: td_db::ReadSet::new(),
        obs: None,
    };
    let mut frontier: Vec<(Option<Arc<PTree>>, Database)> = vec![(make_node(goal), db.clone())];
    let mut depth = 0usize;
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for (tree, db) in frontier {
            let Some(tree) = tree else {
                return Ok(Some(depth));
            };
            if !search.mark_visited(&tree, &db) {
                continue;
            }
            if search.visited.len() >= search.config.max_configs {
                return Ok(None);
            }
            next.extend(search.successors(&tree, &db)?);
        }
        frontier = next;
        depth += 1;
    }
    Ok(None)
}

struct Search<'p> {
    /// The shared transition kernel (program + optional subgoal cache);
    /// the decider only schedules which configuration to expand next.
    kernel: Kernel<'p>,
    config: DeciderConfig,
    visited: HashSet<StateKey>,
    truncated: bool,
    /// Per-run metric batch (rule expansions, cache tallies), absorbed by
    /// [`decide_observed`] when the run ends.
    local: LocalMetrics,
    /// Relations the exploration read, charged uniformly through the
    /// kernel hooks like every other driver. The decision problem has no
    /// commit path, so nothing consumes this today — it exists so the
    /// kernel's read-recording contract holds for all three drivers.
    reads: td_db::ReadSet,
    obs: Option<Arc<Observer>>,
}

/// A configuration: live process tree (None = complete) + database.
type Config = (Option<Arc<PTree>>, Database);

impl<'p> Search<'p> {
    /// DFS for any complete execution. Returns true as soon as one is found
    /// (unless `exhaustive`).
    fn explore(&mut self, tree: Option<Arc<PTree>>, db: Database) -> Result<bool, EngineError> {
        let mut stack: Vec<Config> = vec![(tree, db)];
        let mut found = false;
        while let Some((tree, db)) = stack.pop() {
            let Some(tree) = tree else {
                found = true;
                if self.config.exhaustive {
                    continue;
                }
                return Ok(true);
            };
            if !self.mark_visited(&tree, &db) {
                continue;
            }
            if self.visited.len() >= self.config.max_configs {
                self.truncated = true;
                return Ok(found);
            }
            let succs = self.successors(&tree, &db)?;
            stack.extend(succs);
        }
        Ok(found)
    }

    /// DFS collecting every distinct final database.
    fn collect_finals(
        &mut self,
        tree: Option<Arc<PTree>>,
        db: Database,
        finals: &mut Vec<Database>,
    ) -> Result<(), EngineError> {
        let mut stack: Vec<Config> = vec![(tree, db)];
        while let Some((tree, db)) = stack.pop() {
            let Some(tree) = tree else {
                if !finals.iter().any(|d| d.same_content(&db)) {
                    finals.push(db);
                }
                continue;
            };
            if !self.mark_visited(&tree, &db) {
                continue;
            }
            if self.visited.len() >= self.config.max_configs {
                self.truncated = true;
                return Ok(());
            }
            let succs = self.successors(&tree, &db)?;
            stack.extend(succs);
        }
        Ok(())
    }

    fn mark_visited(&mut self, tree: &Arc<PTree>, db: &Database) -> bool {
        self.visited.insert(state_key(&to_goal(tree), db))
    }

    /// Every configuration reachable in one elementary (or cache macro-)
    /// step, across all schedules and all nondeterministic choices —
    /// enumerated by the shared transition kernel; the decider contributes
    /// no semantics of its own.
    fn successors(&mut self, tree: &Arc<PTree>, db: &Database) -> Result<Vec<Config>, EngineError> {
        // The kernel charges flat semantic counters (unfolds, db ops, …)
        // through its hooks; the decider's result reports configuration
        // counts only, so those go to a scratch pad. Per-rule and
        // per-subgoal tallies still accumulate in `local` for
        // [`decide_observed`].
        let mut scratch = Stats::default();
        let (actions, err) = self.kernel.actions(
            &StepConfig::ground(tree.clone(), db.clone()),
            &mut Hooks {
                stats: &mut scratch,
                local: &mut self.local,
                events: self.obs.as_deref(),
                reads: &mut self.reads,
            },
        );
        if let Some(e) = err {
            return Err(e);
        }
        Ok(actions
            .into_iter()
            .map(|a| {
                let (cfg, _ops) = self.kernel.apply(a);
                (cfg.tree, cfg.db)
            })
            .collect())
    }
}

/// Rename variables densely in first-occurrence order, making α-equivalent
/// goals structurally equal.
pub fn canonical_goal(goal: &Goal) -> Goal {
    let mut map: Vec<(Var, u32)> = Vec::new();
    goal.map_terms(&mut |t| match t {
        Term::Var(v) => {
            let id = match map.iter().find(|(w, _)| *w == v) {
                Some((_, id)) => *id,
                None => {
                    let id = u32::try_from(map.len()).expect("var count overflow");
                    map.push((v, id));
                    id
                }
            };
            Term::var(id)
        }
        other => other,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::load_init;
    use td_parser::parse_program;

    fn setup(src: &str) -> (td_core::Program, Database, Vec<Goal>) {
        let parsed = parse_program(src).expect("parses");
        let db = Database::with_schema_of(&parsed.program);
        let db = load_init(&db, &parsed.init).expect("init");
        let goals = parsed.goals.iter().map(|g| g.goal.clone()).collect();
        (parsed.program, db, goals)
    }

    fn run(src: &str) -> Decision {
        let (p, db, goals) = setup(src);
        decide(&p, &goals[0], &db, DeciderConfig::default()).expect("decides")
    }

    #[test]
    fn trivial_success_and_failure() {
        assert!(run("base t/0. ?- ins.t.").executable);
        assert!(!run("base t/0. ?- t.").executable);
        assert!(!run("base t/0. ?- fail.").executable);
    }

    #[test]
    fn serial_order_is_respected() {
        assert!(!run("base t/0. ?- t * ins.t.").executable);
        assert!(run("base t/0. ?- ins.t * t.").executable);
    }

    #[test]
    fn concurrent_communication_found() {
        let d = run("base m/0. base d/0. c <- m * ins.d. p <- ins.m. ?- c | p.");
        assert!(d.executable);
    }

    #[test]
    fn isolation_semantics_match_engine() {
        let src = "
            base flag/0. base saw/0.
            right <- flag * ins.saw.
            ?- iso { ins.flag * del.flag } | right.
        ";
        assert!(!run(src).executable);
        let src2 = "
            base flag/0. base saw/0.
            right <- flag * ins.saw.
            ?- (ins.flag * del.flag) | right.
        ";
        assert!(run(src2).executable);
    }

    #[test]
    fn nonterminating_recursion_is_decided_by_memoization() {
        // loop <- loop diverges in the interpreter, but the decider sees a
        // single repeated configuration and terminates with "not executable".
        let d = run("loop <- loop. ?- loop.");
        assert!(!d.executable);
        assert!(!d.truncated);
        assert!(
            d.configs <= 3,
            "tiny configuration space, got {}",
            d.configs
        );
    }

    #[test]
    fn tail_recursive_loop_with_exit_is_executable() {
        let d = run("base t/0.
             loop <- { ins.t or loop }.
             ?- loop.");
        assert!(d.executable);
        assert!(!d.truncated);
    }

    #[test]
    fn countdown_explores_linear_space() {
        let src = |n: i64| {
            format!(
                "base n/1. init n({n}).
                 down <- n(0).
                 down <- n(X) * X > 0 * del.n(X) * Y is X - 1 * ins.n(Y) * down.
                 ?- down."
            )
        };
        let d5 = run(&src(5));
        let d10 = run(&src(10));
        assert!(d5.executable && d10.executable);
        assert!(d10.configs > d5.configs);
        // Linear-ish growth: doubling n should not square the space.
        assert!(d10.configs < d5.configs * 4);
    }

    #[test]
    fn exhaustive_mode_counts_the_whole_space() {
        let (p, db, goals) = setup("base a/0. base b/0. ?- ins.a | ins.b.");
        let d = decide(
            &p,
            &goals[0],
            &db,
            DeciderConfig {
                exhaustive: true,
                ..DeciderConfig::default()
            },
        )
        .unwrap();
        assert!(d.executable);
        assert!(d.configs >= 3, "got {}", d.configs);
    }

    #[test]
    fn budget_truncates() {
        let (p, db, goals) = setup(
            "base n/1. init n(100).
             down <- n(0).
             down <- n(X) * X > 0 * del.n(X) * Y is X - 1 * ins.n(Y) * down.
             ?- down.",
        );
        let d = decide(
            &p,
            &goals[0],
            &db,
            DeciderConfig {
                max_configs: 10,
                exhaustive: false,
            },
        )
        .unwrap();
        assert!(d.truncated);
        assert!(!d.executable);
    }

    #[test]
    fn final_states_enumerates_outcomes() {
        let (p, db, goals) = setup(
            "base t/1.
             pick <- { ins.t(1) or ins.t(2) }.
             ?- pick.",
        );
        let finals = final_states(&p, &goals[0], &db, DeciderConfig::default()).unwrap();
        assert_eq!(finals.len(), 2);
    }

    #[test]
    fn canonical_goal_identifies_alpha_equivalent() {
        let g1 = Goal::atom("p", vec![Term::var(3), Term::var(7), Term::var(3)]);
        let g2 = Goal::atom("p", vec![Term::var(9), Term::var(2), Term::var(9)]);
        assert_eq!(canonical_goal(&g1), canonical_goal(&g2));
        let g3 = Goal::atom("p", vec![Term::var(1), Term::var(2), Term::var(2)]);
        assert_ne!(canonical_goal(&g1), canonical_goal(&g3));
    }

    #[test]
    fn agreement_with_interpreter_on_small_programs() {
        let cases = [
            "base t/0. ?- ins.t * del.t * not t.",
            "base a/0. base b/0. ?- (a | ins.a) * b.",
            "base a/0. base b/0. ?- (a | ins.a) * ins.b * b.",
            "base a/0. p <- a. p <- ins.a. ?- p * a.",
            "base a/0. base b/0. ?- iso { ins.a * del.a } * a.",
            "base m/0. base d/0. c <- m * ins.d. ?- c | ins.m.",
        ];
        for src in cases {
            let (p, db, goals) = setup(src);
            let engine = crate::Engine::new(p.clone());
            let eng = engine.executable(&goals[0], &db).unwrap();
            let dec = decide(&p, &goals[0], &db, DeciderConfig::default())
                .unwrap()
                .executable;
            assert_eq!(eng, dec, "mismatch on: {src}");
        }
    }
}

#[cfg(test)]
mod shortest_tests {
    use super::*;
    use crate::engine::load_init;
    use td_parser::parse_program;

    fn shortest(src: &str) -> Option<usize> {
        let parsed = parse_program(src).unwrap();
        let db = Database::with_schema_of(&parsed.program);
        let db = load_init(&db, &parsed.init).unwrap();
        shortest_execution(
            &parsed.program,
            &parsed.goals[0].goal,
            &db,
            DeciderConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn counts_elementary_steps() {
        assert_eq!(shortest("base t/0. ?- ins.t."), Some(1));
        assert_eq!(shortest("base t/0. ?- ins.t * t * del.t."), Some(3));
        assert_eq!(shortest("base t/0. ?- t."), None);
    }

    #[test]
    fn choice_takes_the_shorter_branch() {
        // One branch needs 1 step, the other 3: BFS reports 2 (choice
        // resolution is itself a step).
        let n = shortest(
            "base t/1.
             ?- { ins.t(1) or (ins.t(1) * ins.t(2) * ins.t(3)) }.",
        );
        assert_eq!(n, Some(2));
    }

    #[test]
    fn concurrent_steps_still_count_individually() {
        // Interleaving does not shorten total work: 2 inserts = 2 steps.
        assert_eq!(shortest("base a/0. base b/0. ?- ins.a | ins.b."), Some(2));
    }

    #[test]
    fn unfolds_count_as_steps() {
        // call -> unfold (1) -> ins (1)
        assert_eq!(shortest("base t/0. p <- ins.t. ?- p."), Some(2));
    }

    #[test]
    fn workflow_critical_path() {
        // Example 3.1-shaped: unfoldings + queries + 5 inserts; the exact
        // number is stable and small.
        let n = shortest(
            "base item/1. base done/2.
             init item(w1).
             wf(W) <- t1(W) * (t2(W) | t3(W)).
             t1(W) <- item(W) * ins.done(W, a).
             t2(W) <- ins.done(W, b).
             t3(W) <- ins.done(W, c).
             ?- wf(w1).",
        );
        // wf unfold + t1 unfold + item query + ins + t2/t3 unfolds + 2 ins = 8
        assert_eq!(n, Some(8));
    }
}

#[cfg(test)]
mod state_space_tests {
    use super::*;
    use crate::engine::load_init;
    use td_parser::parse_program;

    fn explore(src: &str) -> Decision {
        let parsed = parse_program(src).unwrap();
        let db = load_init(&Database::with_schema_of(&parsed.program), &parsed.init).unwrap();
        decide(
            &parsed.program,
            &parsed.goals[0].goal,
            &db,
            DeciderConfig {
                exhaustive: true,
                ..DeciderConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn configuration_space_is_exactly_3n_minus_1_for_toggle_products() {
        // n independent insert/delete toggles: each branch contributes 3
        // live configurations (about to insert / about to delete / done),
        // and the product minus the all-done terminal gives 3^n - 1 — the
        // state explosion the paper's complexity results quantify, here in
        // closed form.
        let cfg = |n: usize| {
            let branches: Vec<String> = (0..n).map(|i| format!("(ins.f{i} * del.f{i})")).collect();
            let decls: Vec<String> = (0..n).map(|i| format!("base f{i}/0.")).collect();
            format!("{}\n?- {}.", decls.join("\n"), branches.join(" | "))
        };
        for n in 1..=5usize {
            let d = explore(&cfg(n));
            assert_eq!(d.configs, 3usize.pow(n as u32) - 1, "n={n}");
            assert!(d.executable);
        }
    }
}
