//! Tabled evaluation of Datalog queries (the "tabling" of §6).
//!
//! §6 names two classical optimizations applicable to TD's update-free
//! core: magic sets ([`crate::magic`]) and *tabling* — memoizing calls so
//! that repeated and cyclically-recursive subgoals are answered from a
//! table instead of re-derived. Tabling is what the paper's own XSB
//! citation (\[69\]) provides, and it is exactly what the plain top-down
//! engine lacks: on cyclic data, untabled resolution of
//! `path(X,Z) <- e(X,Y) * path(Y,Z)` loops forever, while tabled
//! resolution terminates (see E11).
//!
//! The implementation is call-pattern tabling run to a global fixpoint:
//!
//! * a **table** per distinct call pattern (predicate + bound-argument
//!   shape, α-canonicalized), holding the answers derived so far;
//! * rule bodies are resolved left-to-right; *derived* body atoms consume
//!   answers from their callee's table (registering the callee as a new
//!   table if unseen) rather than recursing;
//! * passes repeat until no table gains an answer and no new call pattern
//!   appears.
//!
//! This is sound and complete for the positive-Datalog subset (what
//! [`crate::datalog::is_datalog`] accepts) because the Herbrand base is
//! finite and every pass is monotone.

use crate::datalog::NotDatalog;
use std::collections::{HashMap, HashSet};
use td_core::goal::Builtin;
use td_core::unify::unify_terms;
use td_core::{Atom, Bindings, Goal, Program, Rule, Term, Value};
use td_db::{Database, Tuple};

/// Statistics of a tabled evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TablingStats {
    /// Distinct call patterns tabled.
    pub tables: usize,
    /// Total answers across tables.
    pub answers: usize,
    /// Global fixpoint passes.
    pub passes: usize,
}

/// A call pattern: the predicate with bound arguments kept and free
/// positions erased. Two calls share a table iff their patterns agree.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct CallKey {
    pred: td_core::Pred,
    bound: Vec<Option<Value>>,
}

impl CallKey {
    fn of(atom: &Atom, bindings: &Bindings) -> CallKey {
        CallKey {
            pred: atom.pred,
            bound: atom
                .args
                .iter()
                .map(|t| bindings.resolve(*t).as_value())
                .collect(),
        }
    }
}

/// Answer a (possibly non-ground) query atom with tabled resolution.
/// Returns the matching tuples (full argument tuples of the predicate),
/// sorted, plus statistics.
///
/// ```
/// use td_engine::tabling::query_tabled;
/// use td_parser::parse_program;
/// use td_core::{Atom, Term};
/// use td_db::Database;
///
/// // Cyclic data: plain top-down resolution would loop; tabling terminates.
/// let parsed = parse_program(
///     "base e/2. init e(a, b). init e(b, a).
///      path(X, Y) <- e(X, Y).
///      path(X, Z) <- e(X, Y) * path(Y, Z).",
/// ).unwrap();
/// let db = td_engine::load_init(&Database::with_schema_of(&parsed.program), &parsed.init).unwrap();
/// let q = Atom::new("path", vec![Term::sym("a"), Term::var(0)]);
/// let (answers, _) = query_tabled(&parsed.program, &db, &q).unwrap();
/// assert_eq!(answers.len(), 2); // a reaches a and b
/// ```
pub fn query_tabled(
    program: &Program,
    db: &Database,
    query: &Atom,
) -> Result<(Vec<Tuple>, TablingStats), NotDatalog> {
    crate::datalog::is_datalog(program)?;
    if !program.is_derived(query.pred) {
        // Base predicate: read the store.
        let pattern: Vec<Option<Value>> = query.args.iter().map(|t| t.as_value()).collect();
        let mut out = db
            .relation(query.pred)
            .map(|r| r.select(&pattern))
            .unwrap_or_default();
        out.sort();
        return Ok((
            out,
            TablingStats {
                tables: 0,
                answers: 0,
                passes: 0,
            },
        ));
    }

    let mut engine = Tables {
        program,
        db,
        tables: HashMap::new(),
        dirty: true,
        passes: 0,
    };
    let empty = Bindings::new();
    let root = CallKey::of(query, &empty);
    engine.register(root.clone());
    engine.run();

    let pattern: Vec<Option<Value>> = query.args.iter().map(|t| t.as_value()).collect();
    let mut out: Vec<Tuple> = engine.tables[&root]
        .iter()
        .filter(|t| t.matches(&pattern))
        .cloned()
        .collect();
    out.sort();
    let stats = TablingStats {
        tables: engine.tables.len(),
        answers: engine.tables.values().map(HashSet::len).sum(),
        passes: engine.passes,
    };
    Ok((out, stats))
}

struct Tables<'a> {
    program: &'a Program,
    db: &'a Database,
    tables: HashMap<CallKey, HashSet<Tuple>>,
    dirty: bool,
    passes: usize,
}

impl Tables<'_> {
    fn register(&mut self, key: CallKey) {
        if let std::collections::hash_map::Entry::Vacant(e) = self.tables.entry(key) {
            e.insert(HashSet::new());
            self.dirty = true;
        }
    }

    fn run(&mut self) {
        while self.dirty {
            self.dirty = false;
            self.passes += 1;
            let keys: Vec<CallKey> = self.tables.keys().cloned().collect();
            for key in keys {
                self.resolve_key(&key);
            }
        }
    }

    /// One resolution pass for one call pattern: try every rule.
    fn resolve_key(&mut self, key: &CallKey) {
        let rules: Vec<Rule> = self
            .program
            .rules_for(key.pred)
            .iter()
            .map(|&rid| self.program.rule(rid).clone())
            .collect();
        for rule in rules {
            let mut bindings = Bindings::new();
            bindings.alloc(rule.num_vars());
            // Bind head positions to the call pattern's constants.
            let ok = rule.head.args.iter().zip(&key.bound).all(|(h, b)| match b {
                Some(v) => unify_terms(&mut bindings, *h, Term::Val(*v)),
                None => true,
            });
            if !ok {
                continue;
            }
            let mut lits = Vec::new();
            flatten(&rule.body, &mut lits);
            let head = rule.head.clone();
            self.join(key, &head, &lits, 0, &mut bindings);
        }
    }

    fn join(
        &mut self,
        key: &CallKey,
        head: &Atom,
        lits: &[Goal],
        idx: usize,
        bindings: &mut Bindings,
    ) {
        if idx == lits.len() {
            let values: Option<Vec<Value>> =
                head.args.iter().map(|t| bindings.value_of(*t)).collect();
            if let Some(values) = values {
                let t = Tuple::new(values);
                let table = self.tables.get_mut(key).expect("registered");
                if table.insert(t) {
                    self.dirty = true;
                }
            }
            return;
        }
        match &lits[idx] {
            Goal::Atom(a) if self.program.is_base(a.pred) => {
                let pattern: Vec<Option<Value>> = a
                    .args
                    .iter()
                    .map(|t| bindings.resolve(*t).as_value())
                    .collect();
                let candidates = self
                    .db
                    .relation(a.pred)
                    .map(|r| r.select(&pattern))
                    .unwrap_or_default();
                for t in candidates {
                    let mark = bindings.mark();
                    if a.args
                        .iter()
                        .zip(t.values())
                        .all(|(arg, v)| unify_terms(bindings, *arg, Term::Val(*v)))
                    {
                        self.join(key, head, lits, idx + 1, bindings);
                    }
                    bindings.undo_to(mark);
                }
            }
            Goal::Atom(a) => {
                // Derived: consume the callee's current table.
                let sub = CallKey::of(a, bindings);
                self.register(sub.clone());
                let answers: Vec<Tuple> = self.tables[&sub].iter().cloned().collect();
                for t in answers {
                    let mark = bindings.mark();
                    if a.args
                        .iter()
                        .zip(t.values())
                        .all(|(arg, v)| unify_terms(bindings, *arg, Term::Val(*v)))
                    {
                        self.join(key, head, lits, idx + 1, bindings);
                    }
                    bindings.undo_to(mark);
                }
            }
            Goal::NotAtom(a) => {
                let values: Option<Vec<Value>> =
                    a.args.iter().map(|t| bindings.value_of(*t)).collect();
                if let Some(values) = values {
                    if !self.db.contains(a.pred, &Tuple::new(values)) {
                        self.join(key, head, lits, idx + 1, bindings);
                    }
                }
            }
            Goal::Builtin(op, terms) => {
                let mark = bindings.mark();
                if matches!(eval(bindings, *op, terms), Ok(true)) {
                    self.join(key, head, lits, idx + 1, bindings);
                }
                bindings.undo_to(mark);
            }
            other => unreachable!("non-datalog literal {other} after is_datalog"),
        }
    }
}

fn flatten(goal: &Goal, out: &mut Vec<Goal>) {
    match goal {
        Goal::True => {}
        Goal::Seq(gs) => {
            for g in gs {
                flatten(g, out);
            }
        }
        other => out.push(other.clone()),
    }
}

fn eval(bindings: &mut Bindings, op: Builtin, terms: &[Term]) -> Result<bool, ()> {
    crate::kernel::eval_builtin(bindings, op, terms).map_err(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::load_init;
    use td_parser::parse_program;

    fn setup(src: &str) -> (Program, Database) {
        let parsed = parse_program(src).unwrap();
        let db = Database::with_schema_of(&parsed.program);
        let db = load_init(&db, &parsed.init).unwrap();
        (parsed.program, db)
    }

    const TC: &str = "path(X, Y) <- e(X, Y).\npath(X, Z) <- e(X, Y) * path(Y, Z).\n";

    #[test]
    fn terminates_on_cyclic_data() {
        // The case where the untabled top-down engine diverges.
        let (p, db) = setup(&format!(
            "base e/2.\ninit e(a, b). init e(b, a). init e(b, c).\n{TC}"
        ));
        let query = Atom::new("path", vec![Term::sym("a"), Term::var(0)]);
        let (ans, stats) = query_tabled(&p, &db, &query).unwrap();
        assert_eq!(ans.len(), 3, "a reaches a, b, c");
        assert!(stats.passes < 20);
    }

    #[test]
    fn agrees_with_bottom_up_on_chains() {
        let mut src = String::from("base e/2.\n");
        for i in 0..10 {
            src.push_str(&format!("init e(n{i}, n{}).\n", i + 1));
        }
        src.push_str(TC);
        let (p, db) = setup(&src);
        for q in [
            Atom::new("path", vec![Term::sym("n0"), Term::var(0)]),
            Atom::new("path", vec![Term::var(0), Term::sym("n5")]),
            Atom::new("path", vec![Term::sym("n3"), Term::sym("n7")]),
            Atom::new("path", vec![Term::var(0), Term::var(1)]),
        ] {
            let naive = crate::datalog::query(&p, &db, &q).unwrap();
            let (tabled, _) = query_tabled(&p, &db, &q).unwrap();
            assert_eq!(naive, tabled, "query {q}");
        }
    }

    #[test]
    fn bound_calls_table_fewer_answers_than_the_full_fixpoint() {
        let mut src = String::from("base e/2.\n");
        for i in 0..20 {
            src.push_str(&format!("init e(n{i}, n{}).\n", i + 1));
        }
        src.push_str(TC);
        let (p, db) = setup(&src);
        let q = Atom::new("path", vec![Term::sym("n17"), Term::var(0)]);
        let (ans, stats) = query_tabled(&p, &db, &q).unwrap();
        assert_eq!(ans.len(), 3, "n17 reaches n18, n19, n20");
        let full = crate::datalog::evaluate(&p, &db).unwrap();
        assert!(
            stats.answers < full.len(),
            "tabled {} vs full fixpoint {}",
            stats.answers,
            full.len()
        );
    }

    #[test]
    fn mutual_recursion_with_cycles() {
        let (p, db) = setup(
            "base start/1. base e/2.
             init start(a). init e(a, b). init e(b, a).
             even(X) <- start(X).
             even(X) <- odd(Y) * e(Y, X).
             odd(X) <- even(Y) * e(Y, X).",
        );
        let (evens, _) = query_tabled(&p, &db, &Atom::new("even", vec![Term::var(0)])).unwrap();
        let (odds, _) = query_tabled(&p, &db, &Atom::new("odd", vec![Term::var(0)])).unwrap();
        assert_eq!(evens, vec![td_db::tuple!("a")]);
        assert_eq!(odds, vec![td_db::tuple!("b")]);
    }

    #[test]
    fn builtins_inside_tabled_rules() {
        let (p, db) = setup(
            "base n/1.
             init n(1). init n(2). init n(3).
             double(Y) <- n(X) * Y is X + X.",
        );
        let (ans, _) = query_tabled(&p, &db, &Atom::new("double", vec![Term::var(0)])).unwrap();
        assert_eq!(ans.len(), 3);
    }

    #[test]
    fn base_predicate_queries_read_the_store() {
        let (p, db) = setup("base e/2. init e(a, b). path(X, Y) <- e(X, Y).");
        let (ans, stats) =
            query_tabled(&p, &db, &Atom::new("e", vec![Term::var(0), Term::var(1)])).unwrap();
        assert_eq!(ans.len(), 1);
        assert_eq!(stats.tables, 0);
    }

    #[test]
    fn non_datalog_rejected() {
        let (p, db) = setup("base t/0. r <- ins.t.");
        assert!(query_tabled(&p, &db, &Atom::prop("r")).is_err());
    }

    #[test]
    fn agreement_with_magic_sets_on_cyclic_graphs() {
        let (p, db) = setup(&format!(
            "base e/2.
             init e(a, b). init e(b, c). init e(c, a). init e(c, d). init e(x, x).\n{TC}"
        ));
        for (from, expect) in [("a", 4usize), ("x", 1), ("d", 0)] {
            let q = Atom::new("path", vec![Term::sym(from), Term::var(0)]);
            let (tabled, _) = query_tabled(&p, &db, &q).unwrap();
            let (magic, _) = crate::magic::answer(&p, &db, &q).unwrap();
            assert_eq!(tabled, magic, "from {from}");
            assert_eq!(tabled.len(), expect, "from {from}");
        }
    }
}
