//! The backtracking interpreter.
//!
//! A [`Solver`] searches for a *successful execution* of a process tree: a
//! sequence of elementary steps (one per schedulable frontier action) ending
//! with the tree fully reduced. Nondeterminism — which concurrent branch
//! steps next, which rule a call unfolds to, which tuple a query matches,
//! which `or`-branch runs — is explored depth-first through a choicepoint
//! stack. Failure restores the database (snapshots), the variable bindings
//! (trail) and the update log (truncation): TD transactions are
//! all-or-nothing, so a failed execution leaves no residue.
//!
//! Isolation `iso { g }` runs `g` as a *nested* solver from the current
//! database: its steps occupy a contiguous block of the overall execution,
//! which is exactly the paper's ⊙ semantics. The nested solver stays alive
//! inside the choicepoint, so backtracking can pull further solutions out of
//! the isolated block.
//!
//! The transition semantics itself — elementary operations, rule
//! unfolding, subgoal-cache probe and replay — lives in [`crate::kernel`];
//! this module composes those primitives under its trail/choicepoint
//! discipline and owns only the search (strategies, backtracking, budgets,
//! failure memoization).

use crate::cache::{CachedAnswer, StateKey, SubgoalCache};
use crate::config::{EngineConfig, EngineError, Stats, Strategy};
use crate::incremental::Materializer;
use crate::kernel::{self, Hooks, Probe};
use crate::obs::{subgoal_label, LocalMetrics, Observer};
use crate::trace::{SpanPhase, TraceEvent};
use crate::tree::{frontier, leaf_at, make_node, rewrite, to_goal, PTree, Path};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashSet;
use std::sync::Arc;
use td_core::subst::TrailMark;
use td_core::{Atom, Bindings, Goal, Program, RuleId, Var};
use td_db::{Database, DeltaOp, Tuple};

/// Shared execution context: program, config, bindings, statistics, logs.
/// One `Ctx` serves the top-level solver and every nested (isolation)
/// solver, so budgets and the trail are global to the execution.
pub(crate) struct Ctx<'p> {
    pub program: &'p Program,
    pub config: &'p EngineConfig,
    pub bindings: Bindings,
    pub stats: Stats,
    pub delta: Vec<DeltaOp>,
    /// Relations this execution has read, across *all* explored branches.
    /// Monotone: backtracking truncates `delta`/`trace` but never this —
    /// a failed branch's reads are commit-relevant (see
    /// [`td_db::ReadSet`]'s module docs for the soundness argument).
    pub reads: td_db::ReadSet,
    /// Committed-path trace events (only populated when `config.trace`).
    pub trace: Vec<TraceEvent>,
    /// Refuted configurations: (canonical resolved process tree, db digest).
    /// Only populated/consulted under complete strategies (see
    /// `EngineConfig::memo_failures`).
    failed: HashSet<StateKey>,
    /// Shared subtransaction answer cache; `None` when disabled or the
    /// configuration is incompatible (see [`Ctx::new`]'s gate).
    cache: Option<Arc<SubgoalCache>>,
    /// Shared incremental materializer; gated exactly like the cache.
    mat: Option<Arc<Materializer>>,
    /// Observability sink: metrics registry + optional event stream.
    pub(crate) obs: Option<Arc<Observer>>,
    /// Per-run metric accumulator, absorbed into the observer's registry
    /// when the run ends (no locks on the hot path).
    pub(crate) local: LocalMetrics,
    rng: Option<StdRng>,
    rr_counter: u64,
}

impl<'p> Ctx<'p> {
    pub fn new(
        program: &'p Program,
        config: &'p EngineConfig,
        cache: Option<Arc<SubgoalCache>>,
        mat: Option<Arc<Materializer>>,
        obs: Option<Arc<Observer>>,
    ) -> Ctx<'p> {
        let rng = match config.strategy {
            Strategy::ExhaustiveRandom(seed) => Some(StdRng::seed_from_u64(seed)),
            _ => None,
        };
        // The cache replays a subgoal's answers in the canonical exhaustive
        // depth-first order; under any other strategy the lazy path would
        // yield a different order, and a trace cannot be reconstructed from
        // a replay — gate it off rather than produce wrong witnesses. The
        // materializer answers with macro-steps that leave no elementary
        // trace either, so it shares the gate.
        let (cache, mat) = if config.trace || config.strategy != Strategy::Exhaustive {
            (None, None)
        } else {
            (cache, mat)
        };
        let local = LocalMetrics::new(obs.is_some());
        Ctx {
            program,
            config,
            bindings: Bindings::new(),
            stats: Stats::default(),
            delta: Vec::new(),
            reads: td_db::ReadSet::new(),
            trace: Vec::new(),
            failed: HashSet::new(),
            cache,
            mat,
            obs,
            local,
            rng,
            rr_counter: 0,
        }
    }

    /// Record a trace event (no-op unless tracing is enabled).
    fn record(&mut self, f: impl FnOnce() -> TraceEvent) {
        if self.config.trace {
            let ev = f();
            self.trace.push(ev);
        }
    }

    /// Append to the structured event stream (no-op without an observer
    /// event log; independent of the committed-path trace).
    fn emit(&self, f: impl FnOnce() -> TraceEvent) {
        if let Some(obs) = &self.obs {
            obs.emit(None, f);
        }
    }

    /// Is failure memoization active? Requires a complete strategy: under
    /// an incomplete scheduler a failure does not refute the configuration.
    fn memo_active(&self) -> bool {
        self.config.memo_failures && self.config.strategy.backtracks_schedule()
    }

    /// Canonical key of a configuration under the current bindings.
    fn config_key(&self, tree: &Arc<PTree>, db: &Database) -> StateKey {
        let resolved = to_goal(tree).map_terms(&mut |t| self.bindings.resolve(t));
        crate::cache::state_key(&resolved, db)
    }

    /// Unfold `rule_id` for `atom` on the shared trail (a kernel
    /// primitive), recording the committed-path trace event on success.
    fn unfold(&mut self, atom: &Atom, rule_id: RuleId) -> Option<Goal> {
        let body = kernel::unfold_trail(
            self.program,
            &mut self.bindings,
            atom,
            rule_id,
            &mut Hooks {
                stats: &mut self.stats,
                local: &mut self.local,
                events: None,
                reads: &mut self.reads,
            },
        )?;
        self.record(|| TraceEvent::Unfold {
            call: atom.clone(),
            rule: rule_id,
        });
        Some(body)
    }

    fn order_paths(&mut self, paths: &mut [Path]) {
        match self.config.strategy {
            Strategy::Exhaustive | Strategy::Leftmost => {}
            Strategy::ExhaustiveRandom(_) => {
                if let Some(rng) = &mut self.rng {
                    paths.shuffle(rng);
                }
            }
            Strategy::RoundRobin => {
                let n = paths.len();
                if n > 1 {
                    let k = (self.rr_counter as usize) % n;
                    paths.rotate_left(k);
                }
                self.rr_counter += 1;
            }
        }
    }
}

/// Why a step did not complete normally.
enum StepErr {
    /// Normal failure: backtrack.
    Fail,
    /// Fatal: abort the whole execution.
    Fatal(EngineError),
}

type StepResult = Result<(), StepErr>;

fn fatal(e: EngineError) -> StepErr {
    StepErr::Fatal(e)
}

/// Alternatives remaining at a choicepoint.
enum Alts {
    /// Scheduling: other frontier actions to try for this step.
    Sched { paths: Vec<Path>, next: usize },
    /// Other tuples a base-predicate query may match.
    Tuples {
        path: Path,
        atom: Atom,
        tuples: Vec<Tuple>,
        next: usize,
    },
    /// Other rules a call may unfold to.
    Rules {
        path: Path,
        atom: Atom,
        rules: Vec<RuleId>,
        next: usize,
    },
    /// Other `or`-branches.
    Branches {
        path: Path,
        branches: Vec<Goal>,
        next: usize,
    },
    /// A live isolated sub-execution that may yield further solutions.
    Iso {
        path: Path,
        solver: Box<Solver>,
        yield_mark: TrailMark,
        yield_delta: usize,
        yield_trace: usize,
    },
    /// Remaining answers of a cached subgoal (replayed, not re-explored).
    Cached {
        path: Path,
        /// Original variables, positionally matching each answer's values.
        vars: Vec<Var>,
        answers: Arc<Vec<CachedAnswer>>,
        next: usize,
    },
}

struct Choicepoint {
    /// When set, this is the *first* choicepoint pushed for its step: once
    /// it is exhausted, the whole subtree under the pre-step configuration
    /// has been refuted and the key is recorded in `Ctx::failed` — unless a
    /// success was yielded through this subtree in the meantime (see
    /// `successes_at_push`), in which case exhaustion only means "no more
    /// solutions".
    state_key: Option<StateKey>,
    /// `Solver::successes` at push time; compared at pop to decide whether
    /// the subtree was success-free (refuted) or merely drained.
    successes_at_push: u64,
    /// Process tree before the step this choicepoint belongs to.
    tree: Arc<PTree>,
    /// Database before the step.
    db: Database,
    /// Trail position before the step.
    mark: TrailMark,
    /// Update-log length before the step.
    delta_len: usize,
    /// Trace length before the step.
    trace_len: usize,
    alts: Alts,
}

/// A depth-first search for successful executions of one process tree.
pub(crate) struct Solver {
    /// `None` = fully reduced (a solution state).
    state: Option<Arc<PTree>>,
    /// Current database.
    pub db: Database,
    stack: Vec<Choicepoint>,
    /// Key of the configuration the in-flight step started from; consumed
    /// by the first choicepoint that step pushes.
    pending_key: Option<StateKey>,
    /// Number of solutions this solver has yielded. Used to distinguish
    /// refuted choicepoint subtrees from drained ones.
    successes: u64,
}

impl Solver {
    pub fn new(tree: Option<Arc<PTree>>, db: Database) -> Solver {
        Solver {
            state: tree,
            db,
            stack: Vec::new(),
            pending_key: None,
            successes: 0,
        }
    }

    /// Search until the next solution. `Ok(true)`: the solver's `db` is a
    /// solution state. `Ok(false)`: search space exhausted.
    pub fn run(&mut self, ctx: &mut Ctx) -> Result<bool, EngineError> {
        loop {
            let Some(tree) = self.state.clone() else {
                self.successes += 1;
                return Ok(true);
            };
            ctx.stats.steps += 1;
            if ctx.stats.steps > ctx.config.max_steps {
                return Err(EngineError::StepBudget {
                    steps: ctx.stats.steps,
                });
            }
            match self.step(ctx, tree) {
                Ok(()) => {}
                Err(StepErr::Fail) => {
                    if !self.backtrack(ctx)? {
                        return Ok(false);
                    }
                }
                Err(StepErr::Fatal(e)) => return Err(e),
            }
        }
    }

    /// After a success, search for the next distinct solution.
    pub fn resume(&mut self, ctx: &mut Ctx) -> Result<bool, EngineError> {
        if !self.backtrack(ctx)? {
            return Ok(false);
        }
        self.run(ctx)
    }

    fn push_cp(&mut self, ctx: &mut Ctx, mut cp: Choicepoint) -> Result<(), StepErr> {
        if self.stack.len() >= ctx.config.max_stack {
            return Err(fatal(EngineError::StackBudget {
                depth: self.stack.len(),
            }));
        }
        cp.state_key = self.pending_key.take();
        cp.successes_at_push = self.successes;
        self.stack.push(cp);
        ctx.stats.choicepoints += 1;
        ctx.stats.max_stack = ctx.stats.max_stack.max(self.stack.len());
        Ok(())
    }

    /// One elementary step: pick a frontier action per strategy, execute it.
    fn step(&mut self, ctx: &mut Ctx, tree: Arc<PTree>) -> StepResult {
        if ctx.memo_active() {
            let key = ctx.config_key(&tree, &self.db);
            if ctx.failed.contains(&key) {
                ctx.stats.memo_hits += 1;
                return Err(StepErr::Fail);
            }
            self.pending_key = Some(key);
        }
        let stack_before = self.stack.len();
        let mut paths = frontier(&tree);
        debug_assert!(!paths.is_empty(), "non-None state must have a frontier");
        ctx.stats.peak_processes = ctx.stats.peak_processes.max(paths.len());
        ctx.order_paths(&mut paths);
        if paths.len() > 1 && ctx.config.strategy.backtracks_schedule() {
            self.push_cp(
                ctx,
                Choicepoint {
                    state_key: None,
                    successes_at_push: 0,
                    tree: tree.clone(),
                    db: self.db.clone(),
                    mark: ctx.bindings.mark(),
                    delta_len: ctx.delta.len(),
                    trace_len: ctx.trace.len(),
                    alts: Alts::Sched {
                        paths: paths.clone(),
                        next: 1,
                    },
                },
            )?;
        }
        let path = paths.swap_remove(0);
        let result = self.execute(ctx, &tree, path);
        if matches!(result, Err(StepErr::Fail)) && self.stack.len() == stack_before {
            // The step failed with no alternatives: the configuration is
            // refuted outright.
            if let Some(key) = self.pending_key.take() {
                ctx.failed.insert(key);
            }
        }
        self.pending_key = None;
        result
    }

    /// Execute the action leaf at `path` in `tree`.
    fn execute(&mut self, ctx: &mut Ctx, tree: &Arc<PTree>, path: Path) -> StepResult {
        let goal = leaf_at(tree, &path).clone();
        match goal {
            Goal::Fail => Err(StepErr::Fail),
            Goal::Atom(atom) => {
                let resolved = kernel::resolve_atom(&ctx.bindings, &atom);
                if ctx.program.is_base(resolved.pred) {
                    self.exec_query(ctx, tree, path, resolved)
                } else {
                    self.exec_call(ctx, tree, path, resolved)
                }
            }
            Goal::NotAtom(atom) => {
                let resolved = kernel::resolve_atom(&ctx.bindings, &atom);
                ctx.reads.record(resolved.pred);
                match kernel::check_absent(&self.db, &resolved) {
                    Err(e) => Err(fatal(e)),
                    Ok(false) => Err(StepErr::Fail),
                    Ok(true) => {
                        ctx.record(|| TraceEvent::Absent { query: resolved });
                        self.state = rewrite(tree, &path, None);
                        Ok(())
                    }
                }
            }
            Goal::Ins(atom) => self.exec_update(ctx, tree, path, atom, true),
            Goal::Del(atom) => self.exec_update(ctx, tree, path, atom, false),
            Goal::Builtin(op, terms) => match kernel::eval_builtin(&mut ctx.bindings, op, &terms) {
                Ok(true) => {
                    ctx.record(|| TraceEvent::Builtin {
                        rendered: Goal::Builtin(op, terms.clone()).to_string(),
                    });
                    self.state = rewrite(tree, &path, None);
                    Ok(())
                }
                Ok(false) => Err(StepErr::Fail),
                Err(e) => Err(fatal(e)),
            },
            Goal::Choice(branches) => {
                if branches.is_empty() {
                    return Err(StepErr::Fail);
                }
                if branches.len() > 1 {
                    self.push_cp(
                        ctx,
                        Choicepoint {
                            state_key: None,
                            successes_at_push: 0,
                            tree: tree.clone(),
                            db: self.db.clone(),
                            mark: ctx.bindings.mark(),
                            delta_len: ctx.delta.len(),
                            trace_len: ctx.trace.len(),
                            alts: Alts::Branches {
                                path: path.clone(),
                                branches: branches.clone(),
                                next: 1,
                            },
                        },
                    )?;
                }
                ctx.record(|| TraceEvent::Choice { index: 0 });
                self.state = rewrite(tree, &path, make_node(&branches[0]));
                Ok(())
            }
            Goal::Iso(inner) => {
                // An isolated block runs as a contiguous sub-execution from
                // the current database — exactly the shape the subgoal cache
                // stores. Try a replay before paying for a nested search.
                if ctx.cache.is_some() {
                    let resolved = inner.map_terms(&mut |t| ctx.bindings.resolve(t));
                    if let Some(result) = self.try_cached_subgoal(ctx, tree, &path, &resolved) {
                        return result;
                    }
                }
                ctx.stats.iso_enters += 1;
                let pre_mark = ctx.bindings.mark();
                let pre_delta = ctx.delta.len();
                let pre_trace = ctx.trace.len();
                let pre_db = self.db.clone();
                ctx.record(|| TraceEvent::IsoEnter);
                ctx.emit(|| TraceEvent::SpanEnter {
                    phase: SpanPhase::Isolation,
                    detail: String::new(),
                });
                let mut solver = Box::new(Solver::new(make_node(&inner), self.db.clone()));
                match solver.run(ctx) {
                    Ok(true) => {
                        ctx.record(|| TraceEvent::IsoExit);
                        ctx.emit(|| TraceEvent::SpanExit {
                            phase: SpanPhase::Isolation,
                            detail: "commit".to_owned(),
                        });
                        let yield_mark = ctx.bindings.mark();
                        let yield_delta = ctx.delta.len();
                        let yield_trace = ctx.trace.len();
                        self.db = solver.db.clone();
                        self.state = rewrite(tree, &path, None);
                        self.push_cp(
                            ctx,
                            Choicepoint {
                                state_key: None,
                                successes_at_push: 0,
                                tree: tree.clone(),
                                db: pre_db,
                                mark: pre_mark,
                                delta_len: pre_delta,
                                trace_len: pre_trace,
                                alts: Alts::Iso {
                                    path,
                                    solver,
                                    yield_mark,
                                    yield_delta,
                                    yield_trace,
                                },
                            },
                        )?;
                        Ok(())
                    }
                    Ok(false) => {
                        // Clean up whatever the failed sub-search left.
                        ctx.bindings.undo_to(pre_mark);
                        ctx.delta.truncate(pre_delta);
                        ctx.trace.truncate(pre_trace);
                        ctx.emit(|| TraceEvent::SpanExit {
                            phase: SpanPhase::Isolation,
                            detail: "fail".to_owned(),
                        });
                        Err(StepErr::Fail)
                    }
                    Err(e) => Err(fatal(e)),
                }
            }
            Goal::True | Goal::Seq(_) | Goal::Par(_) => {
                unreachable!("structural goals are expanded by make_node")
            }
        }
    }

    fn exec_query(
        &mut self,
        ctx: &mut Ctx,
        tree: &Arc<PTree>,
        path: Path,
        atom: Atom,
    ) -> StepResult {
        ctx.reads.record(atom.pred);
        let tuples = kernel::matching_tuples(&self.db, &atom);
        if tuples.is_empty() {
            return Err(StepErr::Fail);
        }
        if tuples.len() > 1 {
            self.push_cp(
                ctx,
                Choicepoint {
                    state_key: None,
                    successes_at_push: 0,
                    tree: tree.clone(),
                    db: self.db.clone(),
                    mark: ctx.bindings.mark(),
                    delta_len: ctx.delta.len(),
                    trace_len: ctx.trace.len(),
                    alts: Alts::Tuples {
                        path: path.clone(),
                        atom: atom.clone(),
                        tuples: tuples.clone(),
                        next: 1,
                    },
                },
            )?;
        }
        if !kernel::bind_tuple(&mut ctx.bindings, &atom, &tuples[0]) {
            return Err(StepErr::Fail);
        }
        ctx.record(|| TraceEvent::Match {
            query: atom.clone(),
            tuple: tuples[0].clone(),
        });
        self.state = rewrite(tree, &path, None);
        Ok(())
    }

    fn exec_call(
        &mut self,
        ctx: &mut Ctx,
        tree: &Arc<PTree>,
        path: Path,
        atom: Atom,
    ) -> StepResult {
        // A ground call that is the *sole* frontier action executes as a
        // contiguous block (nothing else is schedulable until it finishes),
        // so its answer set is cacheable exactly like an isolated block.
        // The same condition is applied in the decider and the parallel
        // backend, so all three make identical caching decisions.
        if ctx.mat.is_some() && atom.is_ground() && frontier(tree).len() == 1 {
            // A materialized probe is a pure-query macro-step: it beats both
            // the cache and rule unfolding, succeeding (leaf erased, no
            // bindings, no delta) or failing outright.
            let mat = ctx.mat.clone().expect("checked");
            if let Some(holds) = mat.holds(&self.db, &atom) {
                ctx.stats.mat_probes += 1;
                // A view probe reads every base relation feeding the
                // materialized fragment.
                for p in mat.base_support() {
                    ctx.reads.record(p);
                }
                if let Some(cache) = &ctx.cache {
                    // Materialization supersedes the cache for this
                    // predicate; never double-store.
                    cache.note_unsuitable();
                }
                return if holds {
                    self.state = rewrite(tree, &path, None);
                    Ok(())
                } else {
                    Err(StepErr::Fail)
                };
            }
        }
        if ctx.cache.is_some() && atom.is_ground() && frontier(tree).len() == 1 {
            let subgoal = Goal::Atom(atom.clone());
            if let Some(result) = self.try_cached_subgoal(ctx, tree, &path, &subgoal) {
                return result;
            }
        }
        let rules: Vec<RuleId> = ctx.program.rules_for(atom.pred).to_vec();
        if rules.is_empty() {
            return Err(StepErr::Fail);
        }
        if rules.len() > 1 {
            self.push_cp(
                ctx,
                Choicepoint {
                    state_key: None,
                    successes_at_push: 0,
                    tree: tree.clone(),
                    db: self.db.clone(),
                    mark: ctx.bindings.mark(),
                    delta_len: ctx.delta.len(),
                    trace_len: ctx.trace.len(),
                    alts: Alts::Rules {
                        path: path.clone(),
                        atom: atom.clone(),
                        rules: rules.clone(),
                        next: 1,
                    },
                },
            )?;
        }
        match ctx.unfold(&atom, rules[0]) {
            Some(body) => {
                self.state = rewrite(tree, &path, make_node(&body));
                Ok(())
            }
            None => Err(StepErr::Fail),
        }
    }

    fn exec_update(
        &mut self,
        ctx: &mut Ctx,
        tree: &Arc<PTree>,
        path: Path,
        atom: Atom,
        is_ins: bool,
    ) -> StepResult {
        let resolved = kernel::resolve_atom(&ctx.bindings, &atom);
        match kernel::apply_update(&self.db, &resolved, is_ins) {
            Err(e) => Err(fatal(e)),
            Ok((db, changed, op)) => {
                if let Some(mat) = &ctx.mat {
                    mat.apply_ops(&self.db, std::slice::from_ref(&op), &db);
                }
                self.db = db;
                ctx.stats.db_ops += 1;
                ctx.record(|| match &op {
                    DeltaOp::Ins(pred, t) => TraceEvent::Ins {
                        pred: *pred,
                        tuple: t.clone(),
                        changed,
                    },
                    DeltaOp::Del(pred, t) => TraceEvent::Del {
                        pred: *pred,
                        tuple: t.clone(),
                        changed,
                    },
                });
                ctx.delta.push(op);
                self.state = rewrite(tree, &path, None);
                Ok(())
            }
        }
    }

    /// Try to resolve a contiguous subgoal (isolated block or sole-frontier
    /// ground call) from the answer cache. `None` = no cache, or the entry
    /// is unsuitable: the caller must run the lazy path. `Some(r)` = the
    /// subgoal was handled by replay (including `r = Err(Fail)` when the
    /// cached answer set is empty, which correctly feeds the failure memo).
    fn try_cached_subgoal(
        &mut self,
        ctx: &mut Ctx,
        tree: &Arc<PTree>,
        path: &Path,
        resolved: &Goal,
    ) -> Option<StepResult> {
        let cache = ctx.cache.clone()?;
        let probe = kernel::probe_subgoal(
            ctx.program,
            &cache,
            &self.db,
            resolved,
            &mut Hooks {
                stats: &mut ctx.stats,
                local: &mut ctx.local,
                events: ctx.obs.as_deref(),
                reads: &mut ctx.reads,
            },
        );
        match probe {
            Probe::Lazy => None,
            Probe::Replay { answers, vars } => {
                ctx.emit(|| TraceEvent::SpanEnter {
                    phase: SpanPhase::CacheReplay,
                    detail: subgoal_label(resolved),
                });
                let result = self.apply_cached_entry(ctx, tree, path, vars, answers);
                ctx.emit(|| TraceEvent::SpanExit {
                    phase: SpanPhase::CacheReplay,
                    detail: subgoal_label(resolved),
                });
                Some(result)
            }
        }
    }

    /// Commit the first cached answer; push a choicepoint over the rest.
    fn apply_cached_entry(
        &mut self,
        ctx: &mut Ctx,
        tree: &Arc<PTree>,
        path: &Path,
        vars: Vec<Var>,
        answers: Arc<Vec<CachedAnswer>>,
    ) -> StepResult {
        if answers.is_empty() {
            return Err(StepErr::Fail);
        }
        if answers.len() > 1 {
            self.push_cp(
                ctx,
                Choicepoint {
                    state_key: None,
                    successes_at_push: 0,
                    tree: tree.clone(),
                    db: self.db.clone(),
                    mark: ctx.bindings.mark(),
                    delta_len: ctx.delta.len(),
                    trace_len: ctx.trace.len(),
                    alts: Alts::Cached {
                        path: path.clone(),
                        vars: vars.clone(),
                        answers: answers.clone(),
                        next: 1,
                    },
                },
            )?;
        }
        self.apply_answer(ctx, tree, path, &vars, &answers[0])
    }

    /// Replay one cached answer: bind the subgoal's variables to the
    /// answer's ground values and re-apply its state delta.
    fn apply_answer(
        &mut self,
        ctx: &mut Ctx,
        tree: &Arc<PTree>,
        path: &Path,
        vars: &[Var],
        ans: &CachedAnswer,
    ) -> StepResult {
        if !kernel::bind_answer(&mut ctx.bindings, vars, ans) {
            return Err(StepErr::Fail);
        }
        let mut ops = Vec::new();
        let db = kernel::replay_answer(&self.db, ans, |op| {
            ctx.stats.db_ops += 1;
            ctx.delta.push(op.clone());
            ops.push(op.clone());
        })
        .map_err(fatal)?;
        if let Some(mat) = &ctx.mat {
            mat.apply_ops(&self.db, &ops, &db);
        }
        self.db = db;
        self.state = rewrite(tree, path, None);
        Ok(())
    }

    /// Pop/advance choicepoints until an alternative applies. `Ok(false)` =
    /// stack exhausted (overall failure).
    fn backtrack(&mut self, ctx: &mut Ctx) -> Result<bool, EngineError> {
        loop {
            if self.stack.is_empty() {
                return Ok(false);
            }
            ctx.stats.backtracks += 1;
            ctx.local.observe_backtrack(self.stack.len());
            let idx = self.stack.len() - 1;

            // Phase 1: under a mutable borrow of the CP, restore shared
            // state and pick the next alternative (as data).
            enum Decision {
                Exhausted,
                Retry {
                    tree: Arc<PTree>,
                    path: Path,
                    action: Retry,
                },
            }
            enum Retry {
                Sched,
                Tuple(Atom, Tuple),
                Rule(Atom, RuleId),
                Branch(usize, Goal),
                IsoYield(Database),
                IsoDead,
                Cached(Vec<Var>, CachedAnswer),
            }

            let decision = {
                let cp = &mut self.stack[idx];
                match &mut cp.alts {
                    Alts::Sched { paths, next } => {
                        if *next < paths.len() {
                            ctx.bindings.undo_to(cp.mark);
                            ctx.delta.truncate(cp.delta_len);
                            ctx.trace.truncate(cp.trace_len);
                            self.db = cp.db.clone();
                            let p = paths[*next].clone();
                            *next += 1;
                            Decision::Retry {
                                tree: cp.tree.clone(),
                                path: p,
                                action: Retry::Sched,
                            }
                        } else {
                            Decision::Exhausted
                        }
                    }
                    Alts::Tuples {
                        path,
                        atom,
                        tuples,
                        next,
                    } => {
                        if *next < tuples.len() {
                            ctx.bindings.undo_to(cp.mark);
                            ctx.delta.truncate(cp.delta_len);
                            ctx.trace.truncate(cp.trace_len);
                            self.db = cp.db.clone();
                            let t = tuples[*next].clone();
                            *next += 1;
                            Decision::Retry {
                                tree: cp.tree.clone(),
                                path: path.clone(),
                                action: Retry::Tuple(atom.clone(), t),
                            }
                        } else {
                            Decision::Exhausted
                        }
                    }
                    Alts::Rules {
                        path,
                        atom,
                        rules,
                        next,
                    } => {
                        if *next < rules.len() {
                            ctx.bindings.undo_to(cp.mark);
                            ctx.delta.truncate(cp.delta_len);
                            ctx.trace.truncate(cp.trace_len);
                            self.db = cp.db.clone();
                            let r = rules[*next];
                            *next += 1;
                            Decision::Retry {
                                tree: cp.tree.clone(),
                                path: path.clone(),
                                action: Retry::Rule(atom.clone(), r),
                            }
                        } else {
                            Decision::Exhausted
                        }
                    }
                    Alts::Branches {
                        path,
                        branches,
                        next,
                    } => {
                        if *next < branches.len() {
                            ctx.bindings.undo_to(cp.mark);
                            ctx.delta.truncate(cp.delta_len);
                            ctx.trace.truncate(cp.trace_len);
                            self.db = cp.db.clone();
                            let b = branches[*next].clone();
                            let idx = *next;
                            *next += 1;
                            Decision::Retry {
                                tree: cp.tree.clone(),
                                path: path.clone(),
                                action: Retry::Branch(idx, b),
                            }
                        } else {
                            Decision::Exhausted
                        }
                    }
                    Alts::Iso {
                        path,
                        solver,
                        yield_mark,
                        yield_delta,
                        yield_trace,
                    } => {
                        // Drop bindings/updates the outer execution made
                        // after the last yield, then ask the nested solver
                        // for another solution.
                        ctx.bindings.undo_to(*yield_mark);
                        ctx.delta.truncate(*yield_delta);
                        ctx.trace.truncate(*yield_trace);
                        match solver.resume(ctx)? {
                            true => {
                                ctx.record(|| TraceEvent::IsoExit);
                                *yield_mark = ctx.bindings.mark();
                                *yield_delta = ctx.delta.len();
                                *yield_trace = ctx.trace.len();
                                Decision::Retry {
                                    tree: cp.tree.clone(),
                                    path: path.clone(),
                                    action: Retry::IsoYield(solver.db.clone()),
                                }
                            }
                            false => {
                                ctx.bindings.undo_to(cp.mark);
                                ctx.delta.truncate(cp.delta_len);
                                ctx.trace.truncate(cp.trace_len);
                                self.db = cp.db.clone();
                                Decision::Retry {
                                    tree: cp.tree.clone(),
                                    path: path.clone(),
                                    action: Retry::IsoDead,
                                }
                            }
                        }
                    }
                    Alts::Cached {
                        path,
                        vars,
                        answers,
                        next,
                    } => {
                        if *next < answers.len() {
                            ctx.bindings.undo_to(cp.mark);
                            ctx.delta.truncate(cp.delta_len);
                            ctx.trace.truncate(cp.trace_len);
                            self.db = cp.db.clone();
                            let ans = answers[*next].clone();
                            *next += 1;
                            Decision::Retry {
                                tree: cp.tree.clone(),
                                path: path.clone(),
                                action: Retry::Cached(vars.clone(), ans),
                            }
                        } else {
                            Decision::Exhausted
                        }
                    }
                }
            };

            // Phase 2: apply the decision without holding the CP borrow.
            match decision {
                Decision::Exhausted => {
                    if let Some(cp) = self.stack.pop() {
                        if let Some(key) = cp.state_key {
                            if cp.successes_at_push == self.successes {
                                ctx.failed.insert(key);
                            }
                        }
                    }
                    continue;
                }
                Decision::Retry { tree, path, action } => match action {
                    Retry::Sched => match self.execute(ctx, &tree, path) {
                        Ok(()) => return Ok(true),
                        Err(StepErr::Fail) => continue,
                        Err(StepErr::Fatal(e)) => return Err(e),
                    },
                    Retry::Tuple(atom, tuple) => {
                        if kernel::bind_tuple(&mut ctx.bindings, &atom, &tuple) {
                            ctx.record(|| TraceEvent::Match { query: atom, tuple });
                            self.state = rewrite(&tree, &path, None);
                            return Ok(true);
                        }
                        continue;
                    }
                    Retry::Rule(atom, rule) => match ctx.unfold(&atom, rule) {
                        Some(body) => {
                            self.state = rewrite(&tree, &path, make_node(&body));
                            return Ok(true);
                        }
                        None => continue,
                    },
                    Retry::Branch(index, branch) => {
                        ctx.record(|| TraceEvent::Choice { index });
                        self.state = rewrite(&tree, &path, make_node(&branch));
                        return Ok(true);
                    }
                    Retry::IsoYield(db) => {
                        self.db = db;
                        self.state = rewrite(&tree, &path, None);
                        return Ok(true);
                    }
                    Retry::IsoDead => {
                        if let Some(cp) = self.stack.pop() {
                            if let Some(key) = cp.state_key {
                                if cp.successes_at_push == self.successes {
                                    ctx.failed.insert(key);
                                }
                            }
                        }
                        continue;
                    }
                    Retry::Cached(vars, ans) => {
                        match self.apply_answer(ctx, &tree, &path, &vars, &ans) {
                            Ok(()) => return Ok(true),
                            Err(StepErr::Fail) => continue,
                            Err(StepErr::Fatal(e)) => return Err(e),
                        }
                    }
                },
            }
        }
    }
}
