//! The runtime process tree.
//!
//! A running TD goal is a tree of sequential and concurrent regions over
//! *action leaves* (atoms, updates, builtins, choices, isolation blocks).
//! The tree is persistent — children are `Arc`-shared — so a choicepoint
//! snapshot is a single pointer clone, and each rewrite rebuilds only the
//! path from the root to the rewritten leaf.
//!
//! Invariants maintained by [`make_node`] and [`rewrite`]:
//!
//! * `Seq`/`Par` nodes have ≥ 2 children (singletons collapse to the child);
//! * no `Seq` directly under `Seq`, no `Par` directly under `Par` (spliced);
//! * leaves are *actions*: never `Goal::True`/`Seq`/`Par` (expanded away).
//!
//! In a `Seq` only the first child is runnable; in a `Par` every child is.
//! The executable leaves of a tree are therefore its *frontier* — the
//! schedulable actions the paper's interleaving semantics chooses among.

use std::sync::Arc;
use td_core::Goal;

/// A node of the runtime process tree.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum PTree {
    /// An action leaf: `Atom`, `NotAtom`, `Ins`, `Del`, `Builtin`, `Choice`,
    /// `Iso`, or `Fail` (never `True`/`Seq`/`Par`).
    Lit(Goal),
    /// Serial region: children run left to right.
    Seq(Vec<Arc<PTree>>),
    /// Concurrent region: children interleave.
    Par(Vec<Arc<PTree>>),
}

/// Path from the root to a node: child index at each `Seq`/`Par` level.
pub type Path = Vec<usize>;

/// Convert a goal into a (possibly absent) process tree, expanding
/// structural composition eagerly. `None` means the goal is already
/// complete (`True`, or compositions of `True`).
pub fn make_node(goal: &Goal) -> Option<Arc<PTree>> {
    match goal {
        Goal::True => None,
        Goal::Seq(gs) => {
            let children = splice_children(gs, /*seq*/ true);
            normalized(true, children)
        }
        Goal::Par(gs) => {
            let children = splice_children(gs, /*seq*/ false);
            normalized(false, children)
        }
        other => Some(Arc::new(PTree::Lit(other.clone()))),
    }
}

fn splice_children(goals: &[Goal], seq: bool) -> Vec<Arc<PTree>> {
    let mut out = Vec::with_capacity(goals.len());
    for g in goals {
        match make_node(g) {
            None => {}
            Some(node) => push_spliced(&mut out, node, seq),
        }
    }
    out
}

fn push_spliced(out: &mut Vec<Arc<PTree>>, node: Arc<PTree>, seq: bool) {
    match (&*node, seq) {
        (PTree::Seq(inner), true) | (PTree::Par(inner), false) => out.extend(inner.iter().cloned()),
        _ => out.push(node),
    }
}

fn normalized(seq: bool, mut children: Vec<Arc<PTree>>) -> Option<Arc<PTree>> {
    match children.len() {
        0 => None,
        1 => children.pop(),
        _ => Some(Arc::new(if seq {
            PTree::Seq(children)
        } else {
            PTree::Par(children)
        })),
    }
}

/// Enumerate the frontier: paths to every runnable action leaf, left to
/// right. In a `Seq` only child 0 is runnable; in a `Par` all children are.
pub fn frontier(tree: &Arc<PTree>) -> Vec<Path> {
    let mut out = Vec::new();
    let mut prefix = Vec::new();
    collect_frontier(tree, &mut prefix, &mut out);
    out
}

fn collect_frontier(tree: &Arc<PTree>, prefix: &mut Path, out: &mut Vec<Path>) {
    match &**tree {
        PTree::Lit(_) => out.push(prefix.clone()),
        PTree::Seq(children) => {
            prefix.push(0);
            collect_frontier(&children[0], prefix, out);
            prefix.pop();
        }
        PTree::Par(children) => {
            for (i, c) in children.iter().enumerate() {
                prefix.push(i);
                collect_frontier(c, prefix, out);
                prefix.pop();
            }
        }
    }
}

/// The action goal at `path` (must point at a `Lit` leaf).
pub fn leaf_at<'t>(tree: &'t Arc<PTree>, path: &[usize]) -> &'t Goal {
    match (&**tree, path.split_first()) {
        (PTree::Lit(g), None) => g,
        (PTree::Seq(cs), Some((&i, rest))) | (PTree::Par(cs), Some((&i, rest))) => {
            leaf_at(&cs[i], rest)
        }
        _ => panic!("leaf_at: path does not reach a leaf"),
    }
}

/// Replace the leaf at `path` with `replacement` (`None` = the action
/// completed), renormalizing along the way. Returns the new tree (`None` =
/// the whole execution completed).
pub fn rewrite(
    tree: &Arc<PTree>,
    path: &[usize],
    replacement: Option<Arc<PTree>>,
) -> Option<Arc<PTree>> {
    match (&**tree, path.split_first()) {
        (PTree::Lit(_), None) => replacement,
        (PTree::Seq(cs), Some((&i, rest))) => {
            let new_child = rewrite(&cs[i], rest, replacement);
            rebuild(cs, i, new_child, true)
        }
        (PTree::Par(cs), Some((&i, rest))) => {
            let new_child = rewrite(&cs[i], rest, replacement);
            rebuild(cs, i, new_child, false)
        }
        _ => panic!("rewrite: path does not reach a leaf"),
    }
}

fn rebuild(
    children: &[Arc<PTree>],
    i: usize,
    new_child: Option<Arc<PTree>>,
    seq: bool,
) -> Option<Arc<PTree>> {
    let mut out: Vec<Arc<PTree>> = Vec::with_capacity(children.len() + 2);
    for (j, c) in children.iter().enumerate() {
        if j == i {
            if let Some(nc) = &new_child {
                push_spliced(&mut out, nc.clone(), seq);
            }
        } else {
            out.push(c.clone());
        }
    }
    normalized(seq, out)
}

/// Sequence two (possibly absent) trees: the result runs `first` to
/// completion, then `rest`. Used by the decider and the entailment oracle
/// to give `iso { g }` its contiguity semantics: stepping an isolation leaf
/// commits to running `g`'s block *now*, before anything else — which is
/// exactly `Seq[g, rest-of-tree]`.
pub fn sequence(first: Option<Arc<PTree>>, rest: Option<Arc<PTree>>) -> Option<Arc<PTree>> {
    let mut children = Vec::new();
    if let Some(f) = first {
        push_spliced(&mut children, f, true);
    }
    if let Some(r) = rest {
        push_spliced(&mut children, r, true);
    }
    normalized(true, children)
}

/// Total number of action leaves (running process count, in the paper's
/// sense: each leaf is an activity some process is about to perform).
pub fn leaf_count(tree: &Arc<PTree>) -> usize {
    match &**tree {
        PTree::Lit(_) => 1,
        PTree::Seq(cs) | PTree::Par(cs) => cs.iter().map(leaf_count).sum(),
    }
}

/// Render the tree back into a goal (for tracing, memoization and tests).
pub fn to_goal(tree: &Arc<PTree>) -> Goal {
    match &**tree {
        PTree::Lit(g) => g.clone(),
        PTree::Seq(cs) => Goal::seq(cs.iter().map(to_goal).collect()),
        PTree::Par(cs) => Goal::par(cs.iter().map(to_goal).collect()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_core::Term;

    fn a(name: &str) -> Goal {
        Goal::prop(name)
    }

    #[test]
    fn true_makes_no_node() {
        assert!(make_node(&Goal::True).is_none());
        assert!(make_node(&Goal::seq(vec![Goal::True, Goal::True])).is_none());
    }

    #[test]
    fn actions_make_leaves() {
        let t = make_node(&Goal::ins("p", vec![])).unwrap();
        assert_eq!(*t, PTree::Lit(Goal::ins("p", vec![])));
        assert_eq!(leaf_count(&t), 1);
    }

    #[test]
    fn nested_seq_splices_flat() {
        let g = Goal::Seq(vec![a("x"), Goal::Seq(vec![a("y"), a("z")])]);
        let t = make_node(&g).unwrap();
        let PTree::Seq(cs) = &*t else { panic!() };
        assert_eq!(cs.len(), 3);
    }

    #[test]
    fn frontier_of_seq_is_first_only() {
        let t = make_node(&Goal::seq(vec![a("x"), a("y")])).unwrap();
        assert_eq!(frontier(&t), vec![vec![0]]);
        assert_eq!(*leaf_at(&t, &[0]), a("x"));
    }

    #[test]
    fn frontier_of_par_is_all() {
        let t = make_node(&Goal::par(vec![a("x"), a("y"), a("z")])).unwrap();
        assert_eq!(frontier(&t), vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn mixed_frontier() {
        // (x * y) | z : frontier = {x, z}
        let t = make_node(&Goal::par(vec![Goal::seq(vec![a("x"), a("y")]), a("z")])).unwrap();
        let f = frontier(&t);
        assert_eq!(f.len(), 2);
        assert_eq!(*leaf_at(&t, &f[0]), a("x"));
        assert_eq!(*leaf_at(&t, &f[1]), a("z"));
    }

    #[test]
    fn rewrite_completion_pops_seq_head() {
        let t = make_node(&Goal::seq(vec![a("x"), a("y")])).unwrap();
        let t2 = rewrite(&t, &[0], None).unwrap();
        // Seq of one collapses to the leaf itself.
        assert_eq!(*t2, PTree::Lit(a("y")));
        let t3 = rewrite(&t2, &[], None);
        assert!(t3.is_none(), "everything completed");
    }

    #[test]
    fn rewrite_replacement_splices_into_seq() {
        // x completes and is replaced by (p * q): Seq[x, y] -> Seq[p, q, y]
        let t = make_node(&Goal::seq(vec![a("x"), a("y")])).unwrap();
        let rep = make_node(&Goal::seq(vec![a("p"), a("q")]));
        let t2 = rewrite(&t, &[0], rep).unwrap();
        let PTree::Seq(cs) = &*t2 else { panic!() };
        assert_eq!(cs.len(), 3);
        assert_eq!(*leaf_at(&t2, &[0]), a("p"));
    }

    #[test]
    fn rewrite_par_branch_completion() {
        let t = make_node(&Goal::par(vec![a("x"), a("y")])).unwrap();
        let t2 = rewrite(&t, &[0], None).unwrap();
        assert_eq!(*t2, PTree::Lit(a("y")));
    }

    #[test]
    fn par_replacement_splices() {
        // simulate <- w | simulate: replacing the `simulate` leaf inside a
        // Par with another Par splices, keeping the tree flat.
        let t = make_node(&Goal::par(vec![a("w"), a("simulate")])).unwrap();
        let rep = make_node(&Goal::par(vec![a("w"), a("simulate")]));
        let t2 = rewrite(&t, &[1], rep).unwrap();
        let PTree::Par(cs) = &*t2 else { panic!() };
        assert_eq!(cs.len(), 3, "flattened to [w, w, simulate]");
    }

    #[test]
    fn snapshots_are_shared() {
        let t = make_node(&Goal::par(vec![a("x"), Goal::seq(vec![a("y"), a("z")])])).unwrap();
        let snap = t.clone();
        let t2 = rewrite(&t, &[0], None).unwrap();
        // snapshot unchanged
        assert_eq!(frontier(&snap).len(), 2);
        assert_eq!(frontier(&t2).len(), 1);
        // the untouched subtree is literally shared
        let PTree::Par(orig) = &*snap else { panic!() };
        assert!(Arc::ptr_eq(&orig[1], &t2));
    }

    #[test]
    fn to_goal_round_trips_structure() {
        let g = Goal::par(vec![Goal::seq(vec![a("x"), a("y")]), Goal::iso(a("z"))]);
        let t = make_node(&g).unwrap();
        assert_eq!(to_goal(&t), g);
    }

    #[test]
    fn choice_and_iso_stay_as_leaves() {
        let g = Goal::choice(vec![a("x"), a("y")]);
        let t = make_node(&g).unwrap();
        assert!(matches!(&*t, PTree::Lit(Goal::Choice(_))));
        let g = Goal::iso(Goal::seq(vec![a("x"), a("y")]));
        let t = make_node(&g).unwrap();
        assert!(matches!(&*t, PTree::Lit(Goal::Iso(_))));
    }

    #[test]
    fn leaf_count_counts_processes() {
        let t = make_node(&Goal::par(vec![
            a("a"),
            Goal::seq(vec![a("b"), a("c")]),
            Goal::par(vec![a("d"), a("e")]),
        ]))
        .unwrap();
        assert_eq!(leaf_count(&t), 5);
    }

    #[test]
    fn vars_survive_tree_building() {
        let g = Goal::atom("p", vec![Term::var(3)]);
        let t = make_node(&g).unwrap();
        assert_eq!(*leaf_at(&t, &[]), g);
    }
}

#[cfg(test)]
mod normal_form_properties {
    use super::*;
    use proptest::prelude::*;
    use td_core::Goal;

    fn arb_goal(depth: u32) -> impl Strategy<Value = Goal> {
        let leaf = prop_oneof![
            (0u8..3).prop_map(|i| Goal::ins(&format!("p{i}"), vec![])),
            (0u8..3).prop_map(|i| Goal::prop(&format!("p{i}"))),
            Just(Goal::True),
            Just(Goal::Fail),
        ];
        leaf.prop_recursive(depth, 24, 3, |inner| {
            prop_oneof![
                // Raw constructors on purpose: make_node must normalize
                // arbitrary nesting, including 0- and 1-ary Seq/Par.
                proptest::collection::vec(inner.clone(), 0..3).prop_map(Goal::Seq),
                proptest::collection::vec(inner.clone(), 0..3).prop_map(Goal::Par),
                proptest::collection::vec(inner.clone(), 1..3).prop_map(Goal::Choice),
                inner.prop_map(Goal::iso),
            ]
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn trees_are_normal_forms(g in arb_goal(3)) {
            // Round-tripping a built tree through its goal rendering is the
            // identity: built trees are fixed points of make_node.
            if let Some(t) = make_node(&g) {
                let back = make_node(&to_goal(&t)).expect("non-empty stays non-empty");
                prop_assert_eq!(&*back, &*t);
            }
        }

        #[test]
        fn frontier_paths_all_reach_action_leaves(g in arb_goal(3)) {
            if let Some(t) = make_node(&g) {
                let paths = frontier(&t);
                prop_assert!(!paths.is_empty());
                for p in &paths {
                    let leaf = leaf_at(&t, p);
                    prop_assert!(
                        !matches!(leaf, Goal::True | Goal::Seq(_) | Goal::Par(_)),
                        "structural goal at frontier: {leaf}"
                    );
                }
                prop_assert!(paths.len() <= leaf_count(&t));
            }
        }

        #[test]
        fn completing_every_leaf_empties_the_tree(g in arb_goal(2)) {
            // Repeatedly remove the first frontier leaf; the tree must reach
            // None in exactly leaf_count steps (no leaf lost or duplicated).
            if let Some(mut t) = make_node(&g) {
                let mut removed = 0;
                let total = leaf_count(&t);
                loop {
                    let path = frontier(&t)[0].clone();
                    removed += 1;
                    match rewrite(&t, &path, None) {
                        Some(next) => t = next,
                        None => break,
                    }
                }
                prop_assert_eq!(removed, total);
            }
        }
    }
}
