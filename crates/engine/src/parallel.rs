//! Work-stealing parallel search over the configuration graph.
//!
//! TD's `|` is *semantic* concurrency: processes interleave at
//! elementary-step granularity and the engine must find whether **some**
//! interleaving succeeds. That search — not the object-level processes —
//! is what this module parallelizes. Worker threads cooperatively explore
//! the graph of configurations `(process tree, database)`, the same graph
//! the [`crate::decider`] walks sequentially:
//!
//! * **Scheduler** — each worker owns a deque of pending configurations;
//!   it pushes and pops at the back (depth-first, cache-friendly) and
//!   steals from the *front* of a victim's deque (breadth-first, so thieves
//!   take old, large subtrees). Termination is detected with a global
//!   in-flight counter; no worker exits while work may still be generated.
//! * **Shared memo** — a sharded, mutex-per-shard claim table keyed by
//!   `(canonical process tree, database digest)`, replacing the sequential
//!   engine's private refuted-configuration memo. Claiming is sound for
//!   executability because equal keys have identical reachable
//!   configurations: whichever worker claims a key explores its whole
//!   subtree, so no success can be lost to a claim.
//! * **Cancellation** — an atomic stop flag set on first success (in the
//!   default mode), on a fatal error, or on step-budget exhaustion.
//! * **Deterministic mode** — every configuration carries the *path label*
//!   of scheduling/choice indices that produced it. Labels order
//!   lexicographically exactly like the sequential exhaustive engine's
//!   depth-first exploration, so the label-minimal successful execution
//!   *is* the sequential engine's first witness. The parallel search finds
//!   it by branch-and-bound: successes (and fatal errors) tighten a global
//!   label bound, tasks above the bound are pruned, and the memo stores the
//!   minimal label per key (re-expanding only on a strictly smaller label,
//!   which preserves the minimal witness). The search then returns the same
//!   answer, final database and delta as `SearchBackend::Sequential` —
//!   golden tests rely on this.
//!
//! The step budget is shared: each configuration expansion counts as one
//! step against `EngineConfig::max_steps`. That is a coarser unit than the
//! sequential engine's elementary step, so budgets are comparable but not
//! identical across backends.

use crate::cache::{state_key, StateKey, SubgoalCache};
use crate::config::{EngineConfig, EngineError, Stats};
use crate::engine::{goal_num_vars, Outcome, Solution};
use crate::incremental::Materializer;
use crate::kernel::{Config as StepConfig, Hooks, Kernel};
use crate::obs::{LocalMetrics, Observer};
use crate::trace::{SpanPhase, TraceEvent};
use crate::tree::{leaf_count, make_node, to_goal};
use std::collections::hash_map::{DefaultHasher, Entry};
use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use td_core::{Goal, Program, Term};
use td_db::{Database, Delta, DeltaOp};

/// A persistent (shared-tail) update log: configurations fork at every
/// choice, so the delta along each search path is a cons list sharing its
/// prefix with sibling paths.
enum DeltaChain {
    Nil,
    Cons(DeltaOp, Arc<DeltaChain>),
}

fn delta_push(chain: &Arc<DeltaChain>, op: DeltaOp) -> Arc<DeltaChain> {
    Arc::new(DeltaChain::Cons(op, chain.clone()))
}

fn delta_collect(chain: &Arc<DeltaChain>) -> Delta {
    let mut ops = Vec::new();
    let mut cur = chain;
    while let DeltaChain::Cons(op, rest) = &**cur {
        ops.push(op.clone());
        cur = rest;
    }
    let mut delta = Delta::new();
    for op in ops.into_iter().rev() {
        delta.push(op);
    }
    delta
}

/// One pending configuration: the kernel's scheduling-agnostic
/// [`StepConfig`] plus this backend's bookkeeping (persistent delta chain,
/// deterministic-mode path label).
struct Task {
    cfg: StepConfig,
    delta: Arc<DeltaChain>,
    /// Scheduling/choice path label (`Some` only in deterministic mode).
    label: Option<Vec<u32>>,
}

fn next_label(parent: &Option<Vec<u32>>, idx: usize) -> Option<Vec<u32>> {
    parent.as_ref().map(|l| {
        let mut l2 = Vec::with_capacity(l.len() + 1);
        l2.extend_from_slice(l);
        l2.push(idx as u32);
        l2
    })
}

/// A recorded successful execution.
struct Witness {
    db: Database,
    answer: Vec<Term>,
    delta: Delta,
    label: Option<Vec<u32>>,
}

type MemoKey = StateKey;

const MEMO_SHARDS: usize = 64;

/// Sharded claim table. Lock-light: each key maps to one of
/// [`MEMO_SHARDS`] independent mutexes, so workers rarely contend.
struct Memo {
    shards: Vec<Mutex<MemoShard>>,
}

#[derive(Default)]
struct MemoShard {
    /// Fast mode: claimed keys.
    claimed: HashSet<MemoKey>,
    /// Deterministic mode: minimal label seen per key.
    labeled: HashMap<MemoKey, Vec<u32>>,
}

impl Memo {
    fn new() -> Memo {
        Memo {
            shards: (0..MEMO_SHARDS).map(|_| Mutex::default()).collect(),
        }
    }

    fn shard_for(&self, key: &MemoKey) -> &Mutex<MemoShard> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % MEMO_SHARDS]
    }

    /// Claim a key outright; false means some worker already owns it.
    fn claim(&self, key: MemoKey) -> bool {
        let mut shard = self.shard_for(&key).lock().expect("memo poisoned");
        shard.claimed.insert(key)
    }

    /// Claim a key at a label; succeeds only for a strictly smaller label
    /// than any seen before, so the lexicographically minimal path through
    /// every configuration is always explored.
    fn claim_labeled(&self, key: MemoKey, label: &[u32]) -> bool {
        let mut shard = self.shard_for(&key).lock().expect("memo poisoned");
        match shard.labeled.entry(key) {
            Entry::Occupied(mut e) => {
                if e.get().as_slice() <= label {
                    false
                } else {
                    e.insert(label.to_vec());
                    true
                }
            }
            Entry::Vacant(e) => {
                e.insert(label.to_vec());
                true
            }
        }
    }
}

struct Shared<'p> {
    /// The shared transition kernel (program + optional subgoal cache);
    /// workers only decide which configuration to expand next.
    kernel: Kernel<'p>,
    deterministic: bool,
    max_steps: u64,
    /// One work deque per worker; owner uses the back, thieves the front.
    queues: Vec<Mutex<VecDeque<Task>>>,
    /// Tasks queued or in flight; zero means the search space is exhausted.
    pending: AtomicUsize,
    /// Global cancellation (first success in fast mode, fatal error,
    /// budget exhaustion).
    stop: AtomicBool,
    /// Shared step counter against `max_steps`.
    steps: AtomicU64,
    budget_hit: AtomicBool,
    memo: Memo,
    best: Mutex<Option<Witness>>,
    /// Fatal error with the label it occurred at (deterministic mode keeps
    /// the label-minimal one; an error "wins" over a success only if it
    /// precedes it lexicographically, mirroring sequential DFS order).
    error: Mutex<Option<(Option<Vec<u32>>, EngineError)>>,
    /// Branch-and-bound label (deterministic mode): min over recorded
    /// successes and errors. `has_bound` lets workers skip the lock until
    /// a bound exists.
    bound: Mutex<Option<Vec<u32>>>,
    has_bound: AtomicBool,
    /// Observability sink. The hot path never touches it directly: workers
    /// accumulate into their private [`WorkerOut`] and the registry absorbs
    /// the merged batch once, after the scope joins. Only the aggregate
    /// worker-lifetime spans and steal events go through it live.
    obs: Option<Arc<Observer>>,
}

/// Everything one worker accumulates privately: flat [`Stats`], the
/// observability batch, and the claim/steal tallies the worker-exit span
/// reports.
struct WorkerOut {
    stats: Stats,
    local: LocalMetrics,
    /// Relations this worker's expansions read. Merged across workers at
    /// the end: any worker's exploration is part of the one transaction,
    /// so the union is the transaction's read set (conservative in fast
    /// mode, exact in deterministic mode — both sound).
    reads: td_db::ReadSet,
    /// Configurations this worker claimed in the shared memo.
    claimed: u64,
    /// Tasks this worker stole from other workers' queues.
    stolen: u64,
}

impl WorkerOut {
    fn new(observed: bool) -> WorkerOut {
        WorkerOut {
            stats: Stats::default(),
            local: LocalMetrics::new(observed),
            reads: td_db::ReadSet::new(),
            claimed: 0,
            stolen: 0,
        }
    }
}

impl Shared<'_> {
    fn record_success(&self, task: Task) {
        let label = task.label.clone();
        let w = Witness {
            db: task.cfg.db,
            answer: task.cfg.answer,
            delta: delta_collect(&task.delta),
            label: label.clone(),
        };
        {
            let mut best = self.best.lock().expect("witness lock poisoned");
            let better = match &*best {
                None => true,
                Some(b) => match (&label, &b.label) {
                    (Some(l), Some(bl)) => l < bl,
                    _ => false,
                },
            };
            if !better {
                return;
            }
            *best = Some(w);
        }
        if self.deterministic {
            self.tighten_bound(label);
        } else {
            self.stop.store(true, Ordering::Release);
        }
    }

    fn record_error(&self, label: Option<Vec<u32>>, e: EngineError) {
        {
            let mut err = self.error.lock().expect("error lock poisoned");
            let better = match &*err {
                None => true,
                // `Option<Vec<u32>>` orders labels lexicographically; in
                // deterministic mode both sides are always `Some`.
                Some((el, _)) => self.deterministic && label < *el,
            };
            if !better {
                return;
            }
            *err = Some((label.clone(), e));
        }
        if self.deterministic {
            self.tighten_bound(label);
        } else {
            self.stop.store(true, Ordering::Release);
        }
    }

    fn tighten_bound(&self, label: Option<Vec<u32>>) {
        let Some(l) = label else { return };
        let mut bound = self.bound.lock().expect("bound lock poisoned");
        if bound.as_ref().is_none_or(|b| l < *b) {
            *bound = Some(l);
            self.has_bound.store(true, Ordering::Release);
        }
    }

    /// Deterministic-mode pruning: no success (or earlier error) at or
    /// above the bound can beat what is already recorded. Labels are
    /// unique per path and the bound belongs to a *terminal* step, so a
    /// live task's label is never a prefix of the bound and `>=` is exact.
    fn pruned_by_bound(&self, task: &Task) -> bool {
        if !self.deterministic || !self.has_bound.load(Ordering::Acquire) {
            return false;
        }
        let bound = self.bound.lock().expect("bound lock poisoned");
        match (&task.label, &*bound) {
            (Some(l), Some(b)) => l >= b,
            _ => false,
        }
    }
}

/// Run the parallel search: the counterpart of `Engine::solve` for
/// `SearchBackend::Parallel`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn solve(
    program: &Program,
    config: &EngineConfig,
    goal: &Goal,
    db: &Database,
    threads: usize,
    deterministic: bool,
    cache: Option<Arc<SubgoalCache>>,
    mat: Option<Arc<Materializer>>,
    obs: Option<Arc<Observer>>,
) -> Result<Outcome, EngineError> {
    let nworkers = threads.clamp(1, 64);
    let nvars = goal_num_vars(goal);
    let root = Task {
        cfg: StepConfig {
            tree: make_node(goal),
            db: db.clone(),
            nvars,
            answer: (0..nvars).map(Term::var).collect(),
        },
        delta: Arc::new(DeltaChain::Nil),
        label: deterministic.then(Vec::new),
    };
    let shared = Shared {
        kernel: Kernel {
            program,
            cache,
            mat,
        },
        deterministic,
        max_steps: config.max_steps,
        queues: (0..nworkers).map(|_| Mutex::new(VecDeque::new())).collect(),
        pending: AtomicUsize::new(1),
        stop: AtomicBool::new(false),
        steps: AtomicU64::new(0),
        budget_hit: AtomicBool::new(false),
        memo: Memo::new(),
        best: Mutex::new(None),
        error: Mutex::new(None),
        bound: Mutex::new(None),
        has_bound: AtomicBool::new(false),
        obs,
    };
    shared.queues[0]
        .lock()
        .expect("queue poisoned")
        .push_back(root);

    if let Some(o) = &shared.obs {
        o.emit(None, || TraceEvent::SpanEnter {
            phase: SpanPhase::Solve,
            detail: goal.to_string(),
        });
    }
    let mut worker_outs = Vec::with_capacity(nworkers);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..nworkers)
            .map(|wid| {
                let shared = &shared;
                s.spawn(move || worker(shared, wid, nworkers))
            })
            .collect();
        for h in handles {
            worker_outs.push(h.join().expect("search worker panicked"));
        }
    });

    let mut stats = Stats::default();
    let mut merged = LocalMetrics::new(shared.obs.is_some());
    let mut reads = td_db::ReadSet::new();
    let (mut claimed, mut stolen) = (0u64, 0u64);
    for w in &worker_outs {
        reads.merge(&w.reads);
        stats.steps += w.stats.steps;
        stats.choicepoints += w.stats.choicepoints;
        stats.unfolds += w.stats.unfolds;
        stats.db_ops += w.stats.db_ops;
        stats.iso_enters += w.stats.iso_enters;
        stats.memo_hits += w.stats.memo_hits;
        stats.cache_hits += w.stats.cache_hits;
        stats.cache_misses += w.stats.cache_misses;
        stats.peak_processes = stats.peak_processes.max(w.stats.peak_processes);
        merged.merge(&w.local);
        claimed += w.claimed;
        stolen += w.stolen;
    }
    if let Some(o) = &shared.obs {
        o.registry.absorb(program, &stats, &merged);
        o.registry.add_counter("worker_claims", claimed);
        o.registry.add_counter("worker_steals", stolen);
        o.emit(None, || TraceEvent::SpanExit {
            phase: SpanPhase::Solve,
            detail: format!("workers={nworkers} steps={}", stats.steps),
        });
    }

    let best = shared.best.into_inner().expect("witness lock poisoned");
    let error = shared.error.into_inner().expect("error lock poisoned");
    if let Some((elabel, e)) = error {
        let error_wins = match &best {
            None => true,
            // Deterministic mode replays sequential DFS order: the error
            // aborts the run only if it precedes the best success. In fast
            // mode any found success commits.
            Some(w) => deterministic && elabel < w.label,
        };
        if error_wins {
            return Err(e);
        }
    }
    // A budget hit invalidates a deterministic run even when a success was
    // found: without exhausting the (pruned) space, the recorded witness is
    // not yet *proven* minimal, and returning it would silently break the
    // same-witness-as-sequential contract. Fast mode keeps any success it
    // found — any witness is valid there.
    if shared.budget_hit.load(Ordering::Acquire) && (deterministic || best.is_none()) {
        return Err(EngineError::StepBudget { steps: stats.steps });
    }
    match best {
        Some(w) => Ok(Outcome::Success(Box::new(Solution {
            db: w.db,
            answer: w.answer,
            delta: w.delta,
            reads,
            stats,
            trace: crate::trace::Trace { events: Vec::new() },
        }))),
        None => Ok(Outcome::Failure { stats }),
    }
}

fn worker(shared: &Shared<'_>, wid: usize, nworkers: usize) -> WorkerOut {
    let mut w = WorkerOut::new(shared.obs.is_some());
    if let Some(o) = &shared.obs {
        o.emit(Some(wid as u32), || TraceEvent::SpanEnter {
            phase: SpanPhase::Worker,
            detail: format!("w{wid}"),
        });
    }
    let mut idle_spins = 0u32;
    loop {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let Some(task) = pop_or_steal(shared, wid, nworkers, &mut w) else {
            if shared.pending.load(Ordering::Acquire) == 0 {
                break;
            }
            idle_spins += 1;
            if idle_spins < 64 {
                std::thread::yield_now();
            } else {
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
            continue;
        };
        idle_spins = 0;
        process(shared, wid, task, &mut w);
        // Decremented only after the task's successors are enqueued, so
        // `pending == 0` proves global exhaustion.
        shared.pending.fetch_sub(1, Ordering::AcqRel);
    }
    // The aggregate span for this worker's whole lifetime: what the event
    // stream reports where per-step tracing is impossible.
    if let Some(o) = &shared.obs {
        let (steps, claimed, stolen) = (w.stats.steps, w.claimed, w.stolen);
        o.emit(Some(wid as u32), || TraceEvent::SpanExit {
            phase: SpanPhase::Worker,
            detail: format!("w{wid} steps={steps} claimed={claimed} stolen={stolen}"),
        });
    }
    w
}

fn pop_or_steal(
    shared: &Shared<'_>,
    wid: usize,
    nworkers: usize,
    w: &mut WorkerOut,
) -> Option<Task> {
    if let Some(t) = shared.queues[wid]
        .lock()
        .expect("queue poisoned")
        .pop_back()
    {
        return Some(t);
    }
    for i in 1..nworkers {
        let victim = (wid + i) % nworkers;
        if let Some(t) = shared.queues[victim]
            .lock()
            .expect("queue poisoned")
            .pop_front()
        {
            w.stolen += 1;
            if let Some(o) = &shared.obs {
                o.emit(Some(wid as u32), || TraceEvent::WorkerSteal {
                    thief: wid as u32,
                    victim: victim as u32,
                });
            }
            return Some(t);
        }
    }
    None
}

fn process(shared: &Shared<'_>, wid: usize, task: Task, w: &mut WorkerOut) {
    let Some(tree) = task.cfg.tree.clone() else {
        shared.record_success(task);
        return;
    };
    if shared.pruned_by_bound(&task) {
        return;
    }
    let key = state_key(&to_goal(&tree), &task.cfg.db);
    let claimed = match &task.label {
        Some(l) => shared.memo.claim_labeled(key, l),
        None => shared.memo.claim(key),
    };
    if !claimed {
        w.stats.memo_hits += 1;
        return;
    }
    w.claimed += 1;
    let step = shared.steps.fetch_add(1, Ordering::Relaxed) + 1;
    if step > shared.max_steps {
        shared.budget_hit.store(true, Ordering::Release);
        shared.stop.store(true, Ordering::Release);
        return;
    }
    w.stats.steps += 1;
    w.stats.peak_processes = w.stats.peak_processes.max(leaf_count(&tree));

    let (succs, err) = expand(shared, &task, w);
    w.stats.choicepoints += succs.len() as u64;
    // Reversed: the owner pops from the back, so pushing high-index
    // successors first makes it explore successor 0 next — sequential
    // depth-first order. In deterministic mode this is what makes
    // branch-and-bound effective: the first success found is (near-)minimal
    // and prunes nearly everything else. Thieves take from the front, i.e.
    // the *highest*-index branch — the part of the space depth-first order
    // would reach last.
    for t in succs.into_iter().rev() {
        shared.pending.fetch_add(1, Ordering::AcqRel);
        shared.queues[wid]
            .lock()
            .expect("queue poisoned")
            .push_back(t);
    }
    if let Some((label, e)) = err {
        shared.record_error(label, e);
    }
}

/// Successor tasks generated before a fatal error (if any). Successors keep
/// the kernel's expansion order — frontier paths left to right, then the
/// per-action alternatives in their canonical order — which is what makes
/// path labels agree with sequential depth-first exploration.
type Expansion = (Vec<Task>, Option<(Option<Vec<u32>>, EngineError)>);

/// Expand one configuration through the shared transition kernel, wrapping
/// each successor in this backend's bookkeeping: a path label indexed by
/// the successor's position (deterministic mode), and the task's persistent
/// delta chain extended with whatever ops the transition applied. A fatal
/// error is labeled at the position the failing successor would have had,
/// mirroring sequential DFS order. Per-probe observability events are
/// deliberately suppressed on this hot path (`events: None`); the
/// aggregate worker spans carry the story instead.
fn expand(shared: &Shared<'_>, task: &Task, w: &mut WorkerOut) -> Expansion {
    let (actions, err) = shared.kernel.actions(
        &task.cfg,
        &mut Hooks {
            stats: &mut w.stats,
            local: &mut w.local,
            events: None,
            reads: &mut w.reads,
        },
    );
    let mut out: Vec<Task> = Vec::with_capacity(actions.len());
    for a in actions {
        let label = next_label(&task.label, out.len());
        let (cfg, ops) = shared.kernel.apply(a);
        let mut delta = task.delta.clone();
        for op in ops {
            delta = delta_push(&delta, op);
        }
        out.push(Task { cfg, delta, label });
    }
    let err = err.map(|e| (next_label(&task.label, out.len()), e));
    (out, err)
}

#[cfg(test)]
mod tests {
    use crate::config::{EngineConfig, EngineError, SearchBackend};
    use crate::engine::{load_init, Engine};
    use td_db::Database;
    use td_parser::parse_program;

    fn backends(threads: usize, deterministic: bool) -> (EngineConfig, EngineConfig) {
        (
            EngineConfig::default(),
            EngineConfig::default().with_backend(SearchBackend::Parallel {
                threads,
                deterministic,
            }),
        )
    }

    fn setup(src: &str) -> (td_core::Program, Database, Vec<td_core::Goal>) {
        let parsed = parse_program(src).expect("test program parses");
        let db = Database::with_schema_of(&parsed.program);
        let db = load_init(&db, &parsed.init).expect("init loads");
        let goals = parsed.goals.iter().map(|g| g.goal.clone()).collect();
        (parsed.program, db, goals)
    }

    const TRANSFER: &str = "
        base bal/2.
        init bal(a, 10). init bal(b, 0).
        move(F, T, N) <- bal(F, X) * X >= N * del.bal(F, X)
            * Y is X - N * ins.bal(F, Y)
            * bal(T, Z) * del.bal(T, Z) * W is Z + N * ins.bal(T, W).
        ?- move(a, b, 4) | move(a, b, 6).
    ";

    #[test]
    fn parallel_agrees_on_success() {
        let (program, db, goals) = setup(TRANSFER);
        let (seq_cfg, par_cfg) = backends(4, false);
        let seq = Engine::with_config(program.clone(), seq_cfg)
            .solve(&goals[0], &db)
            .unwrap();
        let par = Engine::with_config(program, par_cfg)
            .solve(&goals[0], &db)
            .unwrap();
        assert!(seq.is_success());
        assert!(par.is_success());
        assert!(seq
            .solution()
            .unwrap()
            .db
            .same_content(&par.solution().unwrap().db));
    }

    #[test]
    fn parallel_agrees_on_failure() {
        let src = "
            base flag/1.
            init flag(up).
            toggle <- del.flag(up) * ins.flag(down).
            ?- toggle * flag(up).
        ";
        let (program, db, goals) = setup(src);
        let (seq_cfg, par_cfg) = backends(4, false);
        let seq = Engine::with_config(program.clone(), seq_cfg)
            .solve(&goals[0], &db)
            .unwrap();
        let par = Engine::with_config(program, par_cfg)
            .solve(&goals[0], &db)
            .unwrap();
        assert!(!seq.is_success());
        assert!(!par.is_success());
    }

    #[test]
    fn deterministic_mode_matches_sequential_witness() {
        // Several distinct successful executions with different answers
        // and different deltas: the deterministic parallel backend must
        // report exactly the sequential engine's first witness.
        let src = "
            base item/1.
            init item(1). init item(2). init item(3).
            take(X) <- item(X) * del.item(X).
            ?- take(X) | take(Y).
        ";
        let (program, db, goals) = setup(src);
        let (seq_cfg, par_cfg) = backends(4, true);
        let seq = Engine::with_config(program.clone(), seq_cfg)
            .solve(&goals[0], &db)
            .unwrap();
        let par = Engine::with_config(program, par_cfg)
            .solve(&goals[0], &db)
            .unwrap();
        let (s, p) = (seq.solution().unwrap(), par.solution().unwrap());
        assert_eq!(s.answer, p.answer);
        assert_eq!(s.delta.ops(), p.delta.ops());
        assert!(s.db.same_content(&p.db));
    }

    #[test]
    fn parallel_step_budget_errors_not_fails() {
        let src = "
            base n/1.
            init n(0).
            spin <- n(X) * del.n(X) * Y is X + 1 * ins.n(Y) * spin.
            ?- spin.
        ";
        let (program, db, goals) = setup(src);
        let cfg =
            EngineConfig::default()
                .with_max_steps(200)
                .with_backend(SearchBackend::Parallel {
                    threads: 4,
                    deterministic: false,
                });
        let got = Engine::with_config(program, cfg).solve(&goals[0], &db);
        assert!(matches!(got, Err(EngineError::StepBudget { .. })));
    }

    #[test]
    fn single_worker_parallel_backend_works() {
        let (program, db, goals) = setup(TRANSFER);
        let cfg = EngineConfig::default().with_backend(SearchBackend::Parallel {
            threads: 1,
            deterministic: false,
        });
        let got = Engine::with_config(program, cfg)
            .solve(&goals[0], &db)
            .unwrap();
        assert!(got.is_success());
    }
}
