//! Shared subtransaction answer cache — tabling for Transaction Datalog.
//!
//! Classical tabling memoizes a call together with its answer substitutions.
//! For a *state-changing* language that is not enough: a subtransaction's
//! meaning depends on the database it starts from, and its answers carry a
//! database transition, not just bindings. Following Fodor's tabling for
//! Transaction Logic, the [`SubgoalCache`] is keyed by
//! `(canonical subgoal, database digest)` — a [`StateKey`] — and stores the
//! subgoal's complete *answer set*: one `(ground bindings, state delta)`
//! pair per successful execution, in the engine's canonical (depth-first)
//! yield order. On a hit, the decider/machine/parallel backends **replay**
//! the cached deltas instead of re-exploring the subgoal.
//!
//! Only two shapes of subgoal are cached, both of which execute as a
//! contiguous block of the overall run (see `docs/CACHING.md` for the
//! soundness argument):
//!
//! * isolated blocks `iso { g }` — contiguous by the ⊙ semantics;
//! * ground derived-atom calls that are the *sole* frontier action —
//!   contiguous because nothing else is schedulable until they finish.
//!
//! The table is sharded (`CACHE_SHARDS` mutexes, the same discipline as
//! the parallel backend's claim table), capacity-bounded with CLOCK
//! (second-chance) eviction, and shared across branches of the sequential
//! search and across workers of the parallel search.

use crate::decider::canonical_goal;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use td_core::{Goal, Term, Var};
use td_db::{Database, Delta};

/// Canonical configuration key: α-renamed goal + 128-bit database content
/// digest. Shared by the decider's visited set, the machine's failure memo,
/// the parallel claim table, and the subgoal cache, so all four agree on
/// what "the same state" means.
pub type StateKey = (Goal, u128);

/// The one way a `(goal, database)` pair becomes a [`StateKey`]: variables
/// renamed densely in first-occurrence order, database keyed by its O(1)
/// incremental content digest.
pub fn state_key(goal: &Goal, db: &Database) -> StateKey {
    (canonical_goal(goal), db.digest())
}

/// Like [`canonical_goal`], but also returns the original variables in
/// first-occurrence order, so cached answers (indexed by canonical variable
/// id) can be translated back into the caller's variable space.
pub(crate) fn canonicalize_with_map(goal: &Goal) -> (Goal, Vec<Var>) {
    let mut map: Vec<Var> = Vec::new();
    let canon = goal.map_terms(&mut |t| match t {
        Term::Var(v) => {
            let id = match map.iter().position(|w| *w == v) {
                Some(i) => i as u32,
                None => {
                    map.push(v);
                    (map.len() - 1) as u32
                }
            };
            Term::var(id)
        }
        other => other,
    });
    (canon, map)
}

/// One answer of a cached subgoal: a ground value per canonical variable
/// plus the update log its execution committed, in order.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CachedAnswer {
    /// Ground value of canonical variable `i` at position `i`.
    pub values: Vec<td_core::Value>,
    /// The elementary updates this answer's execution applied.
    pub delta: Delta,
}

/// What the cache knows about a key.
#[derive(Clone, Debug)]
pub enum CacheEntry {
    /// The complete answer set, in canonical depth-first yield order
    /// (duplicates preserved — the lazy search yields them too).
    Answers {
        answers: Arc<Vec<CachedAnswer>>,
        /// The relations the enumeration read while producing (and
        /// exhausting) the answer set — over *all* branches, including
        /// failed ones. A replay charges this set to the replaying
        /// transaction's read set: the macro-step depends on exactly the
        /// relations the lazy execution would have consulted.
        reads: Arc<td_db::ReadSet>,
    },
    /// Enumeration was attempted and abandoned (non-ground answer, fault,
    /// or over the answer/step bound): callers must use the lazy path.
    /// Negative-cached so the attempt is not repeated.
    Unsuitable,
}

const CACHE_SHARDS: usize = 64;

#[derive(Debug)]
struct Slot {
    entry: CacheEntry,
    /// CLOCK reference bit: set on every lookup, cleared when the hand
    /// passes, evicted when found clear.
    referenced: bool,
}

#[derive(Default, Debug)]
struct Shard {
    map: HashMap<StateKey, Slot>,
    /// The CLOCK hand's queue; may contain stale keys (skipped on pop).
    clock: VecDeque<StateKey>,
}

/// Sharded, capacity-bounded answer table. Cheap to share: clone the
/// surrounding `Arc`. All counters are process-wide totals across every
/// search that used this table.
#[derive(Debug)]
pub struct SubgoalCache {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    unsuitable: AtomicU64,
    evictions: AtomicU64,
}

impl SubgoalCache {
    /// Table bounded to roughly `capacity` entries (divided evenly across
    /// shards, at least one per shard).
    pub fn new(capacity: usize) -> SubgoalCache {
        SubgoalCache {
            shards: (0..CACHE_SHARDS).map(|_| Mutex::default()).collect(),
            capacity_per_shard: (capacity / CACHE_SHARDS).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            unsuitable: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_for(&self, key: &StateKey) -> &Mutex<Shard> {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % CACHE_SHARDS]
    }

    /// Look a key up. An [`CacheEntry::Answers`] result counts as a hit, an
    /// absent key as a miss; [`CacheEntry::Unsuitable`] counts as neither
    /// (the lazy fallback is the *intended* behaviour there, not a failure
    /// of the cache).
    pub fn lookup(&self, key: &StateKey) -> Option<CacheEntry> {
        let mut shard = self.shard_for(key).lock().expect("cache shard poisoned");
        match shard.map.get_mut(key) {
            Some(slot) => {
                slot.referenced = true;
                if matches!(slot.entry, CacheEntry::Answers { .. }) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.unsuitable.fetch_add(1, Ordering::Relaxed);
                }
                Some(slot.entry.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert (or overwrite) an entry, evicting with second-chance CLOCK
    /// while the shard is at capacity.
    pub fn insert(&self, key: StateKey, entry: CacheEntry) {
        let mut shard = self.shard_for(&key).lock().expect("cache shard poisoned");
        if let Some(slot) = shard.map.get_mut(&key) {
            slot.entry = entry;
            slot.referenced = true;
            return;
        }
        while shard.map.len() >= self.capacity_per_shard {
            let Some(victim) = shard.clock.pop_front() else {
                break;
            };
            match shard.map.get_mut(&victim) {
                // Stale queue entry for an already-evicted key.
                None => continue,
                Some(slot) if slot.referenced => {
                    slot.referenced = false;
                    shard.clock.push_back(victim);
                }
                Some(_) => {
                    shard.map.remove(&victim);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        shard.clock.push_back(key.clone());
        shard.map.insert(
            key,
            Slot {
                entry,
                referenced: false,
            },
        );
    }

    /// Lookups that found a usable answer set.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Lookups that found a negative [`CacheEntry::Unsuitable`] entry (the
    /// lazy fallback was mandatory — neither a hit nor a miss).
    pub fn unsuitable(&self) -> u64 {
        self.unsuitable.load(Ordering::Relaxed)
    }

    /// Record a probe the cache deliberately skipped without a lookup — a
    /// call on a *materialized* predicate is answered by the incremental
    /// circuit, and storing it here too would double-store the same answer.
    pub fn note_unsuitable(&self) {
        self.unsuitable.fetch_add(1, Ordering::Relaxed);
    }

    /// Entries discarded by the CLOCK policy.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Entries currently stored (across all shards).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// True if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_core::Value;

    fn key(i: i64) -> StateKey {
        (Goal::atom("p", vec![Term::int(i)]), i as u128)
    }

    fn answers(v: i64) -> CacheEntry {
        CacheEntry::Answers {
            answers: Arc::new(vec![CachedAnswer {
                values: vec![Value::Int(v)],
                delta: Delta::new(),
            }]),
            reads: Arc::new(td_db::ReadSet::new()),
        }
    }

    #[test]
    fn roundtrip_and_counters() {
        let c = SubgoalCache::new(1024);
        assert!(c.is_empty());
        assert!(c.lookup(&key(1)).is_none());
        assert_eq!(c.misses(), 1);
        c.insert(key(1), answers(7));
        let got = c.lookup(&key(1)).expect("present");
        match got {
            CacheEntry::Answers { answers: a, .. } => {
                assert_eq!(a[0].values, vec![Value::Int(7)]);
            }
            CacheEntry::Unsuitable => panic!("wrong entry kind"),
        }
        assert_eq!(c.hits(), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn unsuitable_counts_as_neither_hit_nor_miss() {
        let c = SubgoalCache::new(1024);
        c.insert(key(2), CacheEntry::Unsuitable);
        let got = c.lookup(&key(2));
        assert!(matches!(got, Some(CacheEntry::Unsuitable)));
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 0);
        assert_eq!(c.unsuitable(), 1);
    }

    #[test]
    fn clock_evicts_at_capacity_and_second_chances_referenced_entries() {
        // Capacity 64 → one slot per shard. Fill one shard's slot, touch it,
        // then insert more keys into the same shard: the touched entry
        // survives one pass (second chance) while unreferenced ones go.
        let c = SubgoalCache::new(CACHE_SHARDS);
        let mut keys = Vec::new();
        let mut i = 0i64;
        // Find three keys landing in the same shard.
        let shard_of = |c: &SubgoalCache, k: &StateKey| c.shard_for(k) as *const _ as usize;
        let target = shard_of(&c, &key(0));
        while keys.len() < 3 {
            if shard_of(&c, &key(i)) == target {
                keys.push(key(i));
            }
            i += 1;
        }
        c.insert(keys[0].clone(), answers(0));
        assert!(c.lookup(&keys[0]).is_some()); // sets the reference bit
        c.insert(keys[1].clone(), answers(1));
        // keys[0] was referenced → second chance; keys[1] unreferenced and
        // evicted on the next insert.
        c.insert(keys[2].clone(), answers(2));
        assert!(c.evictions() >= 1, "evictions: {}", c.evictions());
        // The shard never exceeds its capacity.
        let shard = c.shard_for(&keys[0]).lock().unwrap();
        assert!(shard.map.len() <= c.capacity_per_shard);
    }

    #[test]
    fn insert_overwrites_in_place() {
        let c = SubgoalCache::new(1024);
        c.insert(key(5), answers(1));
        c.insert(key(5), answers(2));
        assert_eq!(c.len(), 1);
        match c.lookup(&key(5)).unwrap() {
            CacheEntry::Answers { answers: a, .. } => {
                assert_eq!(a[0].values, vec![Value::Int(2)]);
            }
            CacheEntry::Unsuitable => panic!("wrong entry kind"),
        }
    }

    #[test]
    fn canonicalize_maps_vars_in_first_occurrence_order() {
        let g = Goal::atom("p", vec![Term::var(9), Term::var(4), Term::var(9)]);
        let (canon, vars) = canonicalize_with_map(&g);
        assert_eq!(
            canon,
            Goal::atom("p", vec![Term::var(0), Term::var(1), Term::var(0)])
        );
        assert_eq!(vars, vec![Var(9), Var(4)]);
    }

    #[test]
    fn state_key_is_alpha_invariant() {
        let db = Database::new();
        let g1 = Goal::atom("p", vec![Term::var(3)]);
        let g2 = Goal::atom("p", vec![Term::var(11)]);
        assert_eq!(state_key(&g1, &db), state_key(&g2, &db));
    }
}
