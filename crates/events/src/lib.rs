//! # td-events — incremental complex-event pattern matching
//!
//! The reactive half of Transaction Datalog, after Gomes & Alferes'
//! *Transaction Logic with (Complex) Events*: programs declare event
//! relations and attach triggers (`on <pattern> do <goal>.`), and a server
//! feeds ingested events through a [`Reactor`] that evaluates every trigger
//! pattern *incrementally* — each event is matched against the current set
//! of partial matches in O(partial matches), never by rescanning history.
//!
//! ## Match semantics
//!
//! * Patterns are trees of event atoms under `seq`, `and` and `within`.
//!   Each trigger compiles to a flat leaf list plus bitmask constraints:
//!   `seq` becomes a prerequisite mask (a leaf on the right of a `seq` may
//!   only be assigned once every leaf on the left is), `within` becomes a
//!   timestamp-span bound over the leaves it covers.
//! * A *partial match* is an assignment of ingested events to a subset of
//!   leaves with consistent variable bindings. Events are **not consumed**:
//!   one event can participate in many matches, so `seq(a(X), b(X))` over
//!   the stream `a(1) a(1) b(1)` completes twice. Every completed
//!   assignment fires exactly once — the reactor is driven under one lock
//!   in arrival order and never revisits an event.
//! * `seq` orders by *arrival* (ingestion order), `within` measures
//!   *timestamps*. Partial matches whose `within` window can no longer
//!   close — the high-water timestamp has moved more than the bound past
//!   the window's start — are pruned.
//!
//! Trigger *execution* (running the goal as an OCC transaction) lives in
//! `td-serve`; this crate is pure matching.

use td_core::event::{EventPattern, Trigger};
use td_core::{Atom, Goal, Program, Symbol, Term, Value};

/// Cap on retained partial matches per trigger. Beyond it the oldest
/// partials are dropped (and counted) rather than growing without bound on
/// adversarial streams.
pub const MAX_PARTIALS: usize = 65_536;

/// A completed pattern match, ready for trigger execution.
#[derive(Clone, Debug)]
pub struct Fired {
    /// Index of the trigger in the program's declaration order.
    pub trigger: usize,
    /// The trigger goal with the match bindings substituted in.
    pub goal: Goal,
    /// Named bindings accumulated by the match, for logs and replies.
    pub bindings: Vec<(Symbol, Value)>,
}

/// Matching counters, monotonically increasing over the reactor's life.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReactorStats {
    /// Events fed through [`Reactor::ingest`].
    pub ingested: u64,
    /// Completed pattern matches.
    pub matched: u64,
    /// Partial matches discarded by the per-trigger cap.
    pub dropped: u64,
}

struct WithinConstraint {
    mask: u64,
    bound: u64,
}

/// One trigger compiled to leaf + mask form.
struct Automaton {
    leaves: Vec<Atom>,
    /// Per leaf: leaves that must already be assigned (from `seq`).
    prereq: Vec<u64>,
    withins: Vec<WithinConstraint>,
    full: u64,
    num_vars: usize,
    partials: Vec<Partial>,
}

#[derive(Clone)]
struct Partial {
    assigned: u64,
    bindings: Vec<Option<Value>>,
    /// Per `within` constraint: min/max timestamp over assigned leaves.
    win_min: Vec<u64>,
    win_max: Vec<u64>,
}

impl Automaton {
    fn compile(trigger: &Trigger) -> Automaton {
        let mut leaves = Vec::new();
        let mut prereq = Vec::new();
        let mut withins = Vec::new();
        let full = Self::walk(&trigger.pattern, &mut leaves, &mut prereq, &mut withins);
        Automaton {
            leaves,
            prereq,
            withins,
            full,
            num_vars: trigger.var_names.len(),
            partials: Vec::new(),
        }
    }

    fn walk(
        p: &EventPattern,
        leaves: &mut Vec<Atom>,
        prereq: &mut Vec<u64>,
        withins: &mut Vec<WithinConstraint>,
    ) -> u64 {
        match p {
            EventPattern::Atom(a) => {
                let i = leaves.len();
                assert!(i < 64, "validated: at most MAX_PATTERN_LEAVES leaves");
                leaves.push(a.clone());
                prereq.push(0);
                1 << i
            }
            EventPattern::Seq(l, r) => {
                let lm = Self::walk(l, leaves, prereq, withins);
                let rm = Self::walk(r, leaves, prereq, withins);
                for (i, pre) in prereq.iter_mut().enumerate() {
                    if rm & (1 << i) != 0 {
                        *pre |= lm;
                    }
                }
                lm | rm
            }
            EventPattern::And(l, r) => {
                Self::walk(l, leaves, prereq, withins) | Self::walk(r, leaves, prereq, withins)
            }
            EventPattern::Within(inner, bound) => {
                let mask = Self::walk(inner, leaves, prereq, withins);
                withins.push(WithinConstraint {
                    mask,
                    bound: *bound,
                });
                mask
            }
        }
    }

    fn empty_partial(&self) -> Partial {
        Partial {
            assigned: 0,
            bindings: vec![None; self.num_vars],
            win_min: vec![u64::MAX; self.withins.len()],
            win_max: vec![0; self.withins.len()],
        }
    }

    /// Try to extend `partial` by assigning the event to leaf `leaf`.
    fn extend(&self, partial: &Partial, leaf: usize, args: &[Value], ts: u64) -> Option<Partial> {
        let bit = 1u64 << leaf;
        if partial.assigned & bit != 0 || self.prereq[leaf] & !partial.assigned != 0 {
            return None;
        }
        let mut bindings = partial.bindings.clone();
        for (t, v) in self.leaves[leaf].args.iter().zip(args) {
            match t {
                Term::Val(c) => {
                    if c != v {
                        return None;
                    }
                }
                Term::Var(x) => match &bindings[x.0 as usize] {
                    Some(b) => {
                        if b != v {
                            return None;
                        }
                    }
                    None => bindings[x.0 as usize] = Some(*v),
                },
            }
        }
        let mut win_min = partial.win_min.clone();
        let mut win_max = partial.win_max.clone();
        for (ci, w) in self.withins.iter().enumerate() {
            if w.mask & bit != 0 {
                win_min[ci] = win_min[ci].min(ts);
                win_max[ci] = win_max[ci].max(ts);
                if win_max[ci] - win_min[ci] > w.bound {
                    return None;
                }
            }
        }
        Some(Partial {
            assigned: partial.assigned | bit,
            bindings,
            win_min,
            win_max,
        })
    }

    /// A partial is dead once some `within` window it has opened can no
    /// longer close before `watermark` (the max timestamp seen).
    fn expired_for(withins: &[WithinConstraint], partial: &Partial, watermark: u64) -> bool {
        withins.iter().enumerate().any(|(ci, w)| {
            w.mask & !partial.assigned != 0
                && partial.win_min[ci] != u64::MAX
                && watermark.saturating_sub(partial.win_min[ci]) > w.bound
        })
    }
}

/// The incremental matcher for every trigger of one program.
pub struct Reactor {
    triggers: Vec<Trigger>,
    automata: Vec<Automaton>,
    watermark: u64,
    max_partials: usize,
    stats: ReactorStats,
}

impl Reactor {
    /// Compile the program's triggers. The triggers must already have been
    /// validated against `program` (the parser does this).
    pub fn new(program: &Program, triggers: &[Trigger]) -> Reactor {
        let _ = program;
        Reactor {
            automata: triggers.iter().map(Automaton::compile).collect(),
            triggers: triggers.to_vec(),
            watermark: 0,
            max_partials: MAX_PARTIALS,
            stats: ReactorStats::default(),
        }
    }

    /// Override the per-trigger partial-match cap (tests, tight deployments).
    pub fn with_max_partials(mut self, cap: usize) -> Reactor {
        self.max_partials = cap.max(1);
        self
    }

    /// Are there any triggers to match against?
    pub fn is_empty(&self) -> bool {
        self.automata.is_empty()
    }

    /// Counters so far.
    pub fn stats(&self) -> ReactorStats {
        self.stats
    }

    /// Retained partial matches across all triggers.
    pub fn partials(&self) -> usize {
        self.automata.iter().map(|a| a.partials.len()).sum()
    }

    /// Feed one event (declared form: name + declared-arity args, timestamp
    /// separate) and return every pattern match it completes.
    ///
    /// Cost is O(current partial matches), independent of how many events
    /// were ingested before.
    pub fn ingest(&mut self, name: Symbol, args: &[Value], ts: u64) -> Vec<Fired> {
        self.stats.ingested += 1;
        self.watermark = self.watermark.max(ts);
        let mut fired = Vec::new();
        for (ti, automaton) in self.automata.iter_mut().enumerate() {
            let candidate_leaves: Vec<usize> = automaton
                .leaves
                .iter()
                .enumerate()
                .filter(|(_, l)| l.pred.name == name && l.args.len() == args.len())
                .map(|(i, _)| i)
                .collect();
            if candidate_leaves.is_empty() {
                continue;
            }
            let mut fresh = Vec::new();
            let empty = automaton.empty_partial();
            for partial in automaton.partials.iter().chain(std::iter::once(&empty)) {
                for &leaf in &candidate_leaves {
                    if let Some(next) = automaton.extend(partial, leaf, args, ts) {
                        if next.assigned == automaton.full {
                            self.stats.matched += 1;
                            fired.push(complete(ti, &self.triggers[ti], &next));
                        } else {
                            fresh.push(next);
                        }
                    }
                }
            }
            automaton.partials.extend(fresh);
            let watermark = self.watermark;
            automaton
                .partials
                .retain(|p| !Automaton::expired_for(&automaton.withins, p, watermark));
            if automaton.partials.len() > self.max_partials {
                let excess = automaton.partials.len() - self.max_partials;
                automaton.partials.drain(..excess);
                self.stats.dropped += excess as u64;
            }
        }
        fired
    }
}

fn complete(ti: usize, trigger: &Trigger, partial: &Partial) -> Fired {
    let goal = trigger.goal.map_terms(&mut |t| match t {
        Term::Var(v) => match partial.bindings.get(v.0 as usize).copied().flatten() {
            Some(val) => Term::Val(val),
            None => t,
        },
        _ => t,
    });
    let bindings = partial
        .bindings
        .iter()
        .enumerate()
        .filter_map(|(i, b)| b.map(|v| (trigger.var_names[i], v)))
        .collect();
    Fired {
        trigger: ti,
        goal,
        bindings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_parser::parse_program;

    fn reactor(src: &str) -> Reactor {
        let p = parse_program(src).expect("valid program");
        Reactor::new(&p.program, &p.triggers)
    }

    const SEQ_SRC: &str = "
        event a/1. event b/1. base hit/1.
        on seq(a(X), b(X)) do ins.hit(X).
    ";

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn seq_fires_only_in_arrival_order() {
        let mut r = reactor(SEQ_SRC);
        assert!(r.ingest(sym("b"), &[Value::sym("w")], 1).is_empty());
        assert!(r.ingest(sym("a"), &[Value::sym("w")], 2).is_empty());
        let fired = r.ingest(sym("b"), &[Value::sym("w")], 3);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].goal, Goal::ins("hit", vec![Term::sym("w")]));
        assert_eq!(fired[0].bindings, vec![(sym("X"), Value::sym("w"))]);
        assert_eq!(r.stats().matched, 1);
    }

    #[test]
    fn bindings_join_across_leaves() {
        let mut r = reactor(SEQ_SRC);
        r.ingest(sym("a"), &[Value::sym("w1")], 1);
        assert!(
            r.ingest(sym("b"), &[Value::sym("w2")], 2).is_empty(),
            "b(w2) must not complete a(w1)'s partial"
        );
        assert_eq!(r.ingest(sym("b"), &[Value::sym("w1")], 3).len(), 1);
    }

    #[test]
    fn events_are_not_consumed_every_combination_fires() {
        let mut r = reactor(SEQ_SRC);
        r.ingest(sym("a"), &[Value::sym("w")], 1);
        r.ingest(sym("a"), &[Value::sym("w")], 2);
        let fired = r.ingest(sym("b"), &[Value::sym("w")], 3);
        assert_eq!(fired.len(), 2, "two open a(w) partials, one b(w)");
    }

    #[test]
    fn and_fires_in_either_order() {
        let src = "
            event a/0. event b/0. base ok/0.
            on and(a, b) do ins.ok.
        ";
        let mut r = reactor(src);
        r.ingest(sym("b"), &[], 1);
        assert_eq!(r.ingest(sym("a"), &[], 2).len(), 1);
        r.ingest(sym("a"), &[], 3);
        // The fresh a also pairs with the earlier b; then a fresh b pairs
        // with both retained a partials.
        assert_eq!(r.ingest(sym("b"), &[], 4).len(), 2);
    }

    #[test]
    fn within_bounds_the_timestamp_span() {
        let src = "
            event a/1. event b/1. base hit/1.
            on within(seq(a(X), b(X)), 10) do ins.hit(X).
        ";
        let mut r = reactor(src);
        r.ingest(sym("a"), &[Value::Int(1)], 100);
        assert!(
            r.ingest(sym("b"), &[Value::Int(1)], 111).is_empty(),
            "span 11 exceeds the bound"
        );
        r.ingest(sym("a"), &[Value::Int(2)], 200);
        assert_eq!(r.ingest(sym("b"), &[Value::Int(2)], 210).len(), 1);
    }

    #[test]
    fn expired_windows_are_pruned() {
        let src = "
            event a/1. event b/1. base hit/1.
            on within(seq(a(X), b(X)), 10) do ins.hit(X).
        ";
        let mut r = reactor(src);
        r.ingest(sym("a"), &[Value::Int(1)], 100);
        assert_eq!(r.partials(), 1);
        r.ingest(sym("a"), &[Value::Int(2)], 500);
        assert_eq!(r.partials(), 1, "the ts=100 window can no longer close");
    }

    #[test]
    fn constants_in_patterns_filter() {
        let src = "
            event a/2. base ok/0.
            on a(urgent, X) do ins.ok.
        ";
        let mut r = reactor(src);
        assert!(r
            .ingest(sym("a"), &[Value::sym("routine"), Value::Int(1)], 1)
            .is_empty());
        assert_eq!(
            r.ingest(sym("a"), &[Value::sym("urgent"), Value::Int(2)], 2)
                .len(),
            1
        );
    }

    #[test]
    fn unrelated_events_are_ignored_cheaply() {
        let mut r = reactor(SEQ_SRC);
        for i in 0..1000 {
            // Unknown event name: no candidate leaf, nothing retained.
            assert!(r.ingest(sym("c"), &[Value::Int(i)], i as u64).is_empty());
        }
        assert_eq!(r.partials(), 0);
        assert_eq!(r.stats().ingested, 1000);
    }

    #[test]
    fn partial_cap_drops_oldest_and_counts() {
        let cap = 100;
        let mut r = reactor(SEQ_SRC).with_max_partials(cap);
        for i in 0..(cap as i64 + 10) {
            r.ingest(sym("a"), &[Value::Int(i)], 1);
        }
        assert_eq!(r.partials(), cap);
        assert_eq!(r.stats().dropped, 10);
        // The oldest partials (smallest i) were dropped.
        assert!(r.ingest(sym("b"), &[Value::Int(0)], 2).is_empty());
        assert_eq!(r.ingest(sym("b"), &[Value::Int(42)], 3).len(), 1);
    }

    #[test]
    fn nested_seq_and_within_compose() {
        let src = "
            event a/0. event b/0. event c/0. base ok/0.
            on within(seq(a, seq(b, c)), 100) do ins.ok.
        ";
        let mut r = reactor(src);
        r.ingest(sym("c"), &[], 1);
        r.ingest(sym("b"), &[], 2);
        r.ingest(sym("a"), &[], 3);
        assert_eq!(r.stats().matched, 0, "wrong order never fires");
        r.ingest(sym("b"), &[], 4);
        let fired = r.ingest(sym("c"), &[], 5);
        assert_eq!(fired.len(), 1, "a(3) b(4) c(5) in order");
    }

    #[test]
    fn free_goal_variables_survive_substitution() {
        let src = "
            event a/1. base log/2.
            on a(X) do ins.log(X, Y) * del.log(X, Y).
        ";
        // Y is not bound by the pattern; it stays a variable in the fired
        // goal for the engine to solve.
        let p = parse_program(src).expect("valid");
        let mut r = Reactor::new(&p.program, &p.triggers);
        let fired = r.ingest(sym("a"), &[Value::Int(7)], 1);
        assert_eq!(fired.len(), 1);
        let mut has_var = false;
        fired[0].goal.visit(&mut |g| {
            if let Goal::Ins(a) = g {
                has_var = a.args.iter().any(|t| matches!(t, Term::Var(_)));
            }
        });
        assert!(has_var);
    }
}
