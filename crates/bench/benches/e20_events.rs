//! E20 — reactive ingestion: events/sec vs end-to-end trigger latency.
//!
//! Not a paper experiment: this quantifies PR 9 (docs/EVENTS.md). A
//! closed-loop generator streams `sample(S)` / `result(S, Q)` pairs into a
//! *real* `td serve` over its Unix socket; a `seq`+`within` trigger records
//! every completed pair through an OCC transaction. Measured, per cell of a
//! 1/4/8-client matrix:
//!
//! * sustained ingestion throughput (events/sec, socket round trip and
//!   group-commit fsync included);
//! * end-to-end trigger latency — event request start to trigger-transaction
//!   completion — p50/p99, read off the server's log2 histogram;
//! * the group-commit batching factor the burst achieved (records/fsync);
//! * a criterion-timed unit: the pure pattern-matching cost of one event
//!   through the [`Reactor`], no I/O — the ceiling the durable path is
//!   amortizing toward.
//!
//! Triggers execute on the server's scheduler thread; `serve()` drains it
//! before returning, so the shutdown summary carries complete counts.

use criterion::{criterion_group, criterion_main, Criterion};
use std::path::PathBuf;
use std::time::{Duration, Instant};
use td_bench::report_row;
use td_core::{Symbol, Value};
use td_engine::EngineConfig;
use td_events::Reactor;
use td_serve::{Client, ServeSummary, Server};
use td_store::TxOptions;

const PAIRS_PER_CLIENT: usize = 40;

const LAB: &str = r#"
base handled/2.
base fired/1.
init fired(0).
event sample/1.
event result/2.
handle(S, Q) <- fired(N) * del.fired(N) * M is N + 1 * ins.fired(M)
              * ins.handled(S, Q).
on within(seq(sample(S), result(S, Q)), 600000) do handle(S, Q).
"#;

fn bench_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("td-bench-e20").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

struct LoadResult {
    wall: Duration,
    events: u64,
    summary: ServeSummary,
}

/// Closed loop: `clients` connections each stream their disjoint pairs,
/// every `event` request acknowledged after its group-commit fsync.
fn drive(dir: &std::path::Path, clients: usize) -> LoadResult {
    let socket = dir.join("td.sock");
    let parsed = td_parser::parse_program(LAB).unwrap();
    let server = Server::open(
        parsed,
        EngineConfig::default(),
        &dir.join("db"),
        TxOptions {
            max_attempts: 1_000,
            backoff: Duration::from_micros(10),
            ..TxOptions::default()
        },
    )
    .unwrap();
    let sock = socket.clone();
    let handle = std::thread::spawn(move || server.serve(&sock));
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok(mut c) = Client::connect(&socket) {
            if c.ping().is_ok() {
                break;
            }
        }
        assert!(Instant::now() < deadline, "server did not come up");
        std::thread::sleep(Duration::from_millis(5));
    }
    let start = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|i| {
            let socket = socket.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&socket).unwrap();
                for j in 0..PAIRS_PER_CLIENT {
                    let s = i * 1_000 + j;
                    assert!(c.event(&format!("sample({s})")).unwrap().is_ok());
                    assert!(c.event(&format!("result({s}, 1)")).unwrap().is_ok());
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let wall = start.elapsed();
    Client::connect(&socket).unwrap().stop().unwrap();
    let summary = handle.join().unwrap().unwrap();
    LoadResult {
        wall,
        events: (clients * PAIRS_PER_CLIENT * 2) as u64,
        summary,
    }
}

fn emit(cell: &str, r: &LoadResult) {
    let ev = &r.summary.events;
    assert_eq!(ev.ingested, r.events);
    assert_eq!(
        ev.fired,
        (r.events / 2),
        "one trigger per pair, exactly once"
    );
    report_row(
        "E20",
        cell,
        "events_per_s",
        r.events as f64 / r.wall.as_secs_f64(),
        "events/s",
    );
    report_row("E20", cell, "trigger_p50", ev.p50_us as f64, "us");
    report_row("E20", cell, "trigger_p99", ev.p99_us as f64, "us");
    let stats = &r.summary.stats;
    report_row(
        "E20",
        cell,
        "records_per_fsync",
        stats.grouped_records as f64 / stats.groups.max(1) as f64,
        "records",
    );
}

fn bench_event_load(c: &mut Criterion) {
    for clients in [1usize, 4, 8] {
        let cell = format!("clients={clients}");
        let dir = bench_dir(&format!("load-{clients}"));
        let r = drive(&dir, clients);
        emit(&cell, &r);
    }

    // The in-memory matching ceiling: one event through the compiled
    // pattern automaton, no socket, no WAL, no trigger execution. The
    // tight window matters: unmatched-so-far partials are only discarded
    // by watermark pruning, so a 100-tick window keeps the partial set
    // (and the per-event cost being measured) bounded as the iteration
    // count grows.
    const MICRO: &str = "event sample/1. event result/2. base handled/2.\n\
         handle(S, Q) <- ins.handled(S, Q).\n\
         on within(seq(sample(S), result(S, Q)), 100) do handle(S, Q).\n";
    let parsed = td_parser::parse_program(MICRO).unwrap();
    let mut reactor = Reactor::new(&parsed.program, &parsed.triggers);
    let sample = Symbol::intern("sample");
    let result = Symbol::intern("result");
    let mut s = 0i64;
    let mut group = c.benchmark_group("e20/reactor");
    group.bench_function("ingest_pair_match_fire", |b| {
        b.iter(|| {
            s += 1;
            let ts = s as u64;
            let a = reactor.ingest(sample, &[Value::Int(s)], ts);
            let b2 = reactor.ingest(result, &[Value::Int(s), Value::Int(1)], ts);
            assert_eq!(a.len() + b2.len(), 1);
        });
    });
    group.finish();
}

criterion_group!(benches, bench_event_load);
criterion_main!(benches);
