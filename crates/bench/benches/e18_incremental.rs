//! E18 — incremental view maintenance vs top-down re-query.
//!
//! The PR-6 materializer keeps Datalog-evaluable derived predicates as
//! counting/DRed-maintained views, so a warm ground query is an indexed
//! probe instead of a rule unfolding. Four measurements:
//!
//! 1. **Warm re-query** on chain reachability, three ways: plain top-down,
//!    top-down with the subgoal cache, and materialized probes. The claim
//!    under test is the PR's acceptance gate — warm materialized re-query
//!    beats uncached top-down by a wide margin (see `tests/e18_smoke.rs`
//!    for the hard ≥5x CI gate).
//! 2. **Maintenance vs |delta|**: applying k base-edge insertions to a
//!    seeded materializer scales with the derived tuples the delta
//!    touches, not with a full recompute.
//! 3. **Maintenance vs |db|**: a one-tuple delta on a side relation whose
//!    SCC is independent of the (large) reachability views costs the same
//!    at every database size — the SCC skip makes maintenance delta-local.
//! 4. **Warm re-query on a loan-pipeline shape** (the paper's §3
//!    workflow): eligibility/pending queries between approval churn, the
//!    business-workflow analogue of the reachability numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::time::Instant;
use td_bench::report_row;
use td_core::{Atom, Goal, Pred, Term, Value};
use td_db::{Database, DeltaOp, Tuple};
use td_engine::{load_init, Engine, EngineConfig, Materializer};
use td_parser::parse_program;

/// Acyclic chain (plus random forward edges) with transitive closure —
/// the same shape as E11, so the two experiments' numbers compose.
fn chain_program(nodes: usize, extra_edges: usize, seed: u64) -> (td_core::Program, Database) {
    let mut src = String::from("base e/2. base f/1.\n");
    for i in 0..nodes - 1 {
        src.push_str(&format!("init e(n{i}, n{}).\n", i + 1));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..extra_edges {
        let a = rng.random_range(0..nodes - 1);
        let b = rng.random_range(a + 1..nodes);
        src.push_str(&format!("init e(n{a}, n{b}).\n"));
    }
    src.push_str("path(X, Y) <- e(X, Y).\n");
    src.push_str("path(X, Z) <- e(X, Y) * path(Y, Z).\n");
    // A side relation in its own SCC: deltas on `f` must not pay for the
    // (much larger) `path` views.
    src.push_str("tag(X) <- f(X).\n");
    let parsed = parse_program(&src).unwrap();
    let db = Database::with_schema_of(&parsed.program);
    let db = load_init(&db, &parsed.init).unwrap();
    (parsed.program, db)
}

fn end_to_end_query(nodes: usize) -> Goal {
    Goal::atom(
        "path",
        vec![Term::sym("n0"), Term::sym(&format!("n{}", nodes - 1))],
    )
}

/// The churn-and-requery goal: delete and re-insert one middle chain edge
/// (restoring the digest, so warm engines answer from warm state), then
/// ask the end-to-end reachability question.
fn churn_goal(nodes: usize) -> Goal {
    Goal::seq(vec![
        Goal::del("e", vec![Term::sym("n1"), Term::sym("n2")]),
        Goal::ins("e", vec![Term::sym("n1"), Term::sym("n2")]),
        end_to_end_query(nodes),
    ])
}

fn materialized_config() -> EngineConfig {
    EngineConfig::default().with_materialize()
}

/// Engine constructor for one comparison column.
type Variant = (&'static str, fn(&td_core::Program) -> Engine);

fn bench_requery(c: &mut Criterion) {
    let variants: [Variant; 3] = [
        ("topdown", |p| Engine::new(p.clone())),
        ("topdown_cached", |p| {
            Engine::with_config(p.clone(), EngineConfig::default().with_subgoal_cache())
        }),
        ("materialized", |p| {
            Engine::with_config(p.clone(), materialized_config())
        }),
    ];
    for (name, make) in variants {
        let mut group = c.benchmark_group(&format!("e18/warm_requery_{name}"));
        for nodes in [16usize, 32, 64] {
            let (program, db) = chain_program(nodes, nodes / 2, 9);
            let engine = make(&program);
            let goal = churn_goal(nodes);
            // Warm lap: seeds the cache / the materialized states.
            assert!(engine.executable(&goal, &db).unwrap());
            group.bench_with_input(
                BenchmarkId::from_parameter(nodes),
                &(engine, db, goal),
                |b, (engine, db, goal)| {
                    b.iter(|| assert!(engine.executable(goal, db).unwrap()));
                },
            );
        }
        group.finish();
    }
    // Counter shape for the report: a warm materialized run answers the
    // derived query by probes, never by unfolding the recursive rules.
    let (program, db) = chain_program(32, 16, 9);
    let engine = Engine::with_config(program, materialized_config());
    let goal = churn_goal(32);
    for _ in 0..3 {
        assert!(engine.executable(&goal, &db).unwrap());
    }
    let m = engine.materializer().expect("chain program materializes");
    report_row(
        "E18",
        "nodes=32",
        "materialized probes",
        m.probes() as f64,
        "probes",
    );
    report_row(
        "E18",
        "nodes=32",
        "state hits",
        m.state_hits() as f64,
        "hits",
    );
    report_row(
        "E18",
        "nodes=32",
        "rebuilds",
        m.rebuilds() as f64,
        "rebuilds",
    );
}

/// One forward edge insertion per op, each to a *fresh* sink node: every
/// op makes the whole chain prefix newly reach its sink, so the derived
/// delta (and hence maintenance work) genuinely scales with k.
fn edge_delta(nodes: usize, k: usize) -> Vec<DeltaOp> {
    (0..k)
        .map(|i| {
            DeltaOp::Ins(
                Pred::new("e", 2),
                Tuple::new(vec![
                    Value::sym(&format!("n{}", nodes - 2)),
                    Value::sym(&format!("x{i}")),
                ]),
            )
        })
        .collect()
}

/// Fresh compiled materializer with the pre-state's views seeded (the
/// store is lazy until a probe lands), plus the post-state the ops reach.
fn seeded(program: &td_core::Program, db: &Database, ops: &[DeltaOp]) -> (Materializer, Database) {
    let m = Materializer::compile(program).expect("chain program materializes");
    let probe = Atom::new("path", vec![Term::sym("n0"), Term::sym("n1")]);
    assert_eq!(m.holds(db, &probe), Some(true));
    let mut post = db.clone();
    for op in ops {
        post = op.apply(&post).unwrap();
    }
    (m, post)
}

/// Median wall time of one `apply_ops` call over `reps` repetitions, each
/// on a freshly compiled and seeded materializer (the vendored criterion
/// cannot exclude per-iteration setup from timing, so these series are
/// measured by hand and emitted as metric rows).
fn time_maintenance(
    program: &td_core::Program,
    db: &Database,
    ops: &[DeltaOp],
    reps: usize,
) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let (m, post) = seeded(program, db, ops);
            let start = Instant::now();
            m.apply_ops(db, ops, &post);
            start.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

fn bench_maintenance_delta() {
    let nodes = 64usize;
    let (program, db) = chain_program(nodes, 0, 9);
    for k in [1usize, 4, 16] {
        let ops = edge_delta(nodes, k);
        let us = time_maintenance(&program, &db, &ops, 30);
        report_row(
            "E18",
            &format!("nodes={nodes} delta={k}"),
            "maintenance time",
            us,
            "us",
        );
        let (m, post) = seeded(&program, &db, &ops);
        m.apply_ops(&db, &ops, &post);
        report_row(
            "E18",
            &format!("nodes={nodes} delta={k}"),
            "delta tuples maintained",
            m.delta_tuples() as f64,
            "tuples",
        );
    }
}

fn bench_maintenance_dbsize() {
    // One insertion into `f` (SCC `tag`, disjoint from `path`): cost must
    // stay flat as the reachability database grows.
    let ops = vec![DeltaOp::Ins(
        Pred::new("f", 1),
        Tuple::new(vec![Value::Int(1)]),
    )];
    for nodes in [16usize, 64, 256] {
        let (program, db) = chain_program(nodes, 0, 9);
        let us = time_maintenance(&program, &db, &ops, 30);
        report_row(
            "E18",
            &format!("nodes={nodes} delta=1 side-scc"),
            "maintenance time",
            us,
            "us",
        );
    }
}

/// Loan-pipeline shape (the paper's §3 workflow corpus): pure eligibility
/// and pending queries over an application book, between approval churn.
fn loan_program(apps: usize) -> (td_core::Program, Database) {
    let mut src = String::from("base application/2. base approved/1.\n");
    for i in 0..apps {
        src.push_str(&format!(
            "init application(app{i}, {}).\n",
            100 + (i * 97) % 900
        ));
    }
    src.push_str("eligible(W) <- application(W, A) * A <= 500.\n");
    src.push_str("pending(W) <- application(W, A) * not approved(W).\n");
    let parsed = parse_program(&src).unwrap();
    let db = Database::with_schema_of(&parsed.program);
    let db = load_init(&db, &parsed.init).unwrap();
    (parsed.program, db)
}

fn bench_loan_requery(c: &mut Criterion) {
    let variants: [Variant; 2] = [
        ("topdown", |p| Engine::new(p.clone())),
        ("materialized", |p| {
            Engine::with_config(p.clone(), materialized_config())
        }),
    ];
    for (name, make) in variants {
        let mut group = c.benchmark_group(&format!("e18/loan_requery_{name}"));
        for apps in [32usize, 128] {
            let (program, db) = loan_program(apps);
            let engine = make(&program);
            // Approve one application, check another's pending/eligible
            // status, withdraw the approval (digest restored).
            let goal = Goal::seq(vec![
                Goal::ins("approved", vec![Term::sym("app0")]),
                Goal::atom("eligible", vec![Term::sym("app1")]),
                Goal::atom("pending", vec![Term::sym("app1")]),
                Goal::del("approved", vec![Term::sym("app0")]),
            ]);
            assert!(engine.executable(&goal, &db).unwrap());
            group.bench_with_input(
                BenchmarkId::from_parameter(apps),
                &(engine, db, goal),
                |b, (engine, db, goal)| {
                    b.iter(|| assert!(engine.executable(goal, db).unwrap()));
                },
            );
        }
        group.finish();
    }
}

fn bench(c: &mut Criterion) {
    bench_requery(c);
    bench_maintenance_delta();
    bench_maintenance_dbsize();
    bench_loan_requery(c);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(400)).measurement_time(std::time::Duration::from_millis(1500));
    targets = bench
}
criterion_main!(benches);
