//! E10 — the LabFlow-style genome-laboratory throughput benchmark
//! ([26, 24, 25]: "database performance became a bottleneck in workflow
//! throughput").
//!
//! Measures: pipeline completion time (and derived items/sec) vs. number of
//! samples and vs. pipeline depth; insert-only history growth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use td_bench::{report_row, run_ok};
use td_workflow::LabFlowConfig;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10/samples");
    for samples in [2usize, 4, 8, 16] {
        let scenario = LabFlowConfig::new(samples, 4).compile();
        group.throughput(Throughput::Elements(samples as u64));
        group.bench_with_input(BenchmarkId::from_parameter(samples), &scenario, |b, s| {
            b.iter(|| run_ok(s));
        });
        let out = run_ok(&scenario);
        report_row(
            "E10",
            &format!("samples={samples} stages=4"),
            "steps",
            out.stats().steps as f64,
            "steps",
        );
        report_row(
            "E10",
            &format!("samples={samples} stages=4"),
            "history tuples",
            out.solution().unwrap().db.total_tuples() as f64,
            "tuples",
        );
    }
    group.finish();

    let mut group = c.benchmark_group("e10/stages");
    for stages in [2usize, 4, 8, 16] {
        let scenario = LabFlowConfig::new(4, stages).compile();
        group.bench_with_input(BenchmarkId::from_parameter(stages), &scenario, |b, s| {
            b.iter(|| run_ok(s));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(400)).measurement_time(std::time::Duration::from_millis(1500));
    targets = bench
}
criterion_main!(benches);
