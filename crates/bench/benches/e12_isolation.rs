//! E12 — §2: isolation and serializability.
//!
//! Measures: (a) the execution-time overhead of wrapping concurrent agent
//! claims in `iso { … }` vs. leaving them free; (b) the *anomaly count* —
//! double-claims of one agent — observable in committed runs of the
//! unisolated variant under randomized schedules, and always zero under
//! isolation. This is the paper's `⊙t₁ | ⊙t₂ | … | ⊙tₙ` serializability
//! guarantee made measurable.

use criterion::{criterion_group, criterion_main, Criterion};
use td_bench::{report_row, run_ok_with};
use td_engine::{EngineConfig, Strategy};
use td_workflow::{double_claims, AgentScenarioConfig, Node, WorkflowSpec};

fn spec() -> WorkflowSpec {
    WorkflowSpec::new("wf", Node::Seq(vec![Node::task("t1"), Node::task("t2")]))
}

fn config_with(atomic: bool) -> AgentScenarioConfig {
    let items: Vec<String> = (1..=3).map(|i| format!("w{i}")).collect();
    let mut cfg = AgentScenarioConfig::universal_pool(spec(), items, 2);
    cfg.atomic_claim = atomic;
    cfg
}

fn bench(c: &mut Criterion) {
    let isolated = config_with(true).compile();
    let free = config_with(false).compile();

    c.bench_function("e12/isolated_claims", |b| {
        b.iter(|| run_ok_with(&isolated, EngineConfig::default()));
    });
    c.bench_function("e12/free_claims", |b| {
        b.iter(|| run_ok_with(&free, EngineConfig::default()));
    });

    // Anomaly measurement across randomized (but complete) schedules.
    let mut iso_anomalies = 0usize;
    let mut free_anomalies = 0usize;
    let runs = 25;
    for seed in 0..runs {
        let cfg = EngineConfig::default().with_strategy(Strategy::ExhaustiveRandom(seed));
        let out = run_ok_with(&isolated, cfg.clone());
        iso_anomalies += double_claims(&out.solution().unwrap().delta);
        let out = run_ok_with(&free, cfg);
        free_anomalies += double_claims(&out.solution().unwrap().delta);
    }
    report_row(
        "E12",
        &format!("{runs} random schedules"),
        "double-claims (iso)",
        iso_anomalies as f64,
        "anomalies (must be 0)",
    );
    report_row(
        "E12",
        &format!("{runs} random schedules"),
        "double-claims (free)",
        free_anomalies as f64,
        "anomalies",
    );
    assert_eq!(iso_anomalies, 0, "isolation must prevent double-claims");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(400)).measurement_time(std::time::Duration::from_millis(1500));
    targets = bench
}
criterion_main!(benches);
