//! E3 — Example 3.2: workflow simulation with runtime process creation.
//!
//! Measures: end-to-end simulation time vs. number of work items delivered
//! by the environment; growth of the live process tree.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use td_bench::{report_row, run_ok, run_ok_with};
use td_engine::{EngineConfig, Strategy};
use td_workflow::{EnvironmentMode, SimulationConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e03/items");
    for items in [2usize, 4, 8, 16] {
        let scenario = SimulationConfig::new(items, 3).compile();
        group.bench_with_input(BenchmarkId::from_parameter(items), &scenario, |b, s| {
            b.iter(|| run_ok(s));
        });
        let out = run_ok(&scenario);
        report_row(
            "E3",
            &format!("items={items} tasks=3"),
            "steps",
            out.stats().steps as f64,
            "steps",
        );
        // Under the depth-first scheduler each spawned instance runs to
        // completion before the next spawn, so live concurrency stays at 2;
        // the fair round-robin scheduler keeps every spawned instance live
        // simultaneously — runtime process creation made visible.
        let fair = run_ok_with(
            &scenario,
            EngineConfig::default().with_strategy(Strategy::RoundRobin),
        );
        report_row(
            "E3",
            &format!("items={items} tasks=3"),
            "peak live processes",
            fair.stats().peak_processes as f64,
            "(round-robin steady state: spawns balance completions)",
        );
    }
    group.finish();

    c.bench_function("e03/concurrent_environment", |b| {
        let scenario = SimulationConfig {
            items: 4,
            tasks_per_item: 2,
            environment: EnvironmentMode::Concurrent,
        }
        .compile();
        b.iter(|| run_ok(&scenario));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).warm_up_time(std::time::Duration::from_millis(400)).measurement_time(std::time::Duration::from_millis(1500));
    targets = bench
}
criterion_main!(benches);
