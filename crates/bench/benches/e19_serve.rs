//! E19 — serve commit throughput: OCC + group commit vs per-commit fsync.
//!
//! Not a paper experiment: this quantifies PR 8 (docs/SERVE.md). A
//! closed-loop load generator drives concurrent banking transfers through
//! the *library* surface the server sits on ([`ConcurrentStore`]), so the
//! numbers measure the commit path (snapshot, OCC validation, group
//! commit, fsync) without socket noise:
//!
//! * `clients × contention → commits/sec, p50/p99 latency` — the
//!   group-commit path, at 1/4/8 clients against a low-contention (64
//!   accounts) and a high-contention (2 accounts) ledger;
//! * the same workload through a mutex-serialized [`Store`] with one
//!   fsync per commit — the pre-serve baseline the PR-8 acceptance gate
//!   compares against (`tests/e19_smoke.rs`: group commit must sustain
//!   >= 2x at 8 low-contention clients);
//! * the achieved group-commit batching factor (records per fsync).
//!
//! Latencies are whole-transaction: snapshot to durable acknowledgement,
//! retries included.

use criterion::{criterion_group, criterion_main, Criterion};
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};
use td_bench::report_row;
use td_core::{Pred, Value};
use td_db::{Database, Delta, DeltaOp, Tuple};
use td_store::{ConcurrentStore, Store, TxDecision, TxOptions};

const OPS_PER_CLIENT: usize = 150;

fn pred() -> Pred {
    Pred::new("balance", 2)
}

fn row(i: usize, bal: i64) -> Tuple {
    Tuple::new(vec![Value::sym(&format!("acct{i}")), Value::Int(bal)])
}

fn genesis(accounts: usize) -> Database {
    let mut db = Database::new().declare(pred());
    for i in 0..accounts {
        db = db.insert(pred(), &row(i, 1_000_000)).unwrap().0;
    }
    db
}

fn balance_of(db: &Database, i: usize) -> i64 {
    let name = Value::sym(&format!("acct{i}"));
    db.relation(pred())
        .unwrap()
        .to_sorted_vec()
        .iter()
        .find_map(|t| {
            (t.values()[0] == name).then(|| match t.values()[1] {
                Value::Int(b) => b,
                _ => unreachable!(),
            })
        })
        .unwrap()
}

/// A transfer delta against a snapshot. Balances are huge, so transfers
/// never bounce: every transaction commits and the measured rate is a
/// commit rate.
fn transfer_delta(db: &Database, from: usize, to: usize) -> Delta {
    let (bf, bt) = (balance_of(db, from), balance_of(db, to));
    let mut d = Delta::new();
    d.push(DeltaOp::Del(pred(), row(from, bf)));
    d.push(DeltaOp::Ins(pred(), row(from, bf - 1)));
    d.push(DeltaOp::Del(pred(), row(to, bt)));
    d.push(DeltaOp::Ins(pred(), row(to, bt + 1)));
    d
}

fn bench_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("td-bench-e19").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Deterministic per-client account pair for op `k`: disjoint pairs under
/// low contention, everyone on the same pair under high contention.
fn pair(accounts: usize, client: usize, k: usize) -> (usize, usize) {
    if accounts <= 2 {
        (0, 1)
    } else {
        let from = (client * 2) % accounts;
        let to = (from + 1 + (k % (accounts - 2))) % accounts;
        if to == from {
            (from, (from + 1) % accounts)
        } else {
            (from, to)
        }
    }
}

struct LoadResult {
    wall: Duration,
    latencies_us: Vec<u64>,
    commits: u64,
    groups: u64,
    grouped_records: u64,
}

/// Closed loop through the group-commit path.
fn drive_concurrent(dir: &std::path::Path, clients: usize, accounts: usize) -> LoadResult {
    let cs = ConcurrentStore::open_or_init(dir, &genesis(accounts))
        .unwrap()
        .with_options(TxOptions {
            max_attempts: 1_000,
            backoff: Duration::from_micros(10),
            ..TxOptions::default()
        });
    let start = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let cs = cs.clone();
            std::thread::spawn(move || {
                let mut lat = Vec::with_capacity(OPS_PER_CLIENT);
                for k in 0..OPS_PER_CLIENT {
                    let (from, to) = pair(accounts, c, k);
                    let t0 = Instant::now();
                    cs.transaction(|db| {
                        Ok::<_, String>(TxDecision::commit_whole_db(
                            transfer_delta(db, from, to),
                            (),
                        ))
                    })
                    .unwrap();
                    lat.push(t0.elapsed().as_micros() as u64);
                }
                lat
            })
        })
        .collect();
    let mut latencies_us = Vec::new();
    for w in workers {
        latencies_us.extend(w.join().unwrap());
    }
    let wall = start.elapsed();
    let stats = cs.stats();
    drop(cs.close().unwrap());
    LoadResult {
        wall,
        latencies_us,
        commits: stats.commits,
        groups: stats.groups,
        grouped_records: stats.grouped_records,
    }
}

/// The same workload through a mutex-serialized store: one fsync per
/// commit, no batching — the pre-serve baseline.
fn drive_per_commit_fsync(dir: &std::path::Path, clients: usize, accounts: usize) -> LoadResult {
    let store = Mutex::new(Store::open_or_init(dir, &genesis(accounts)).unwrap());
    let start = Instant::now();
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..clients)
            .map(|c| {
                let store = &store;
                scope.spawn(move || {
                    let mut lat = Vec::with_capacity(OPS_PER_CLIENT);
                    for k in 0..OPS_PER_CLIENT {
                        let (from, to) = pair(accounts, c, k);
                        let t0 = Instant::now();
                        let mut s = store.lock().unwrap();
                        let delta = transfer_delta(s.db(), from, to);
                        s.commit(&delta).unwrap();
                        drop(s);
                        lat.push(t0.elapsed().as_micros() as u64);
                    }
                    lat
                })
            })
            .collect();
        let mut latencies_us = Vec::new();
        for w in workers {
            latencies_us.extend(w.join().unwrap());
        }
        let wall = start.elapsed();
        let commits = (clients * OPS_PER_CLIENT) as u64;
        LoadResult {
            wall,
            latencies_us,
            commits,
            groups: commits, // one fsync'd frame per commit, by construction
            grouped_records: commits,
        }
    })
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx]
}

fn emit(cell: &str, series: &str, r: &LoadResult) {
    let mut lat = r.latencies_us.clone();
    lat.sort_unstable();
    let cps = r.commits as f64 / r.wall.as_secs_f64();
    report_row(
        "E19",
        cell,
        &format!("{series}_commits_per_s"),
        cps,
        "commits/s",
    );
    report_row(
        "E19",
        cell,
        &format!("{series}_p50"),
        percentile(&lat, 0.50) as f64,
        "us",
    );
    report_row(
        "E19",
        cell,
        &format!("{series}_p99"),
        percentile(&lat, 0.99) as f64,
        "us",
    );
    report_row(
        "E19",
        cell,
        &format!("{series}_records_per_fsync"),
        r.grouped_records as f64 / r.groups.max(1) as f64,
        "records",
    );
}

fn bench_serve_load(c: &mut Criterion) {
    // The load matrix runs once per cell (each cell is already 150 × N
    // fsync-bound transactions); criterion benches one representative op.
    for (contention, accounts) in [("low", 64usize), ("high", 2usize)] {
        for clients in [1usize, 4, 8] {
            let cell = format!("clients={clients} contention={contention}");
            let dir = bench_dir(&format!("group-{clients}-{contention}"));
            let r = drive_concurrent(&dir, clients, accounts);
            emit(&cell, "group_commit", &r);
            let dir = bench_dir(&format!("single-{clients}-{contention}"));
            let r = drive_per_commit_fsync(&dir, clients, accounts);
            emit(&cell, "per_commit_fsync", &r);
        }
    }

    // One criterion-timed op so the harness has a stable unit sample: a
    // single committed transaction on an otherwise idle store.
    let dir = bench_dir("unit");
    let cs = ConcurrentStore::open_or_init(&dir, &genesis(4)).unwrap();
    let mut group = c.benchmark_group("e19/commit");
    group.bench_function("single_client_durable_commit", |b| {
        b.iter(|| {
            cs.transaction(|db| {
                Ok::<_, String>(TxDecision::commit_whole_db(transfer_delta(db, 0, 1), ()))
            })
            .unwrap()
        });
    });
    group.finish();
    drop(cs.close().unwrap());
}

criterion_group!(benches, bench_serve_load);
criterion_main!(benches);
