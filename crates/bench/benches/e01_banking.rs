//! E1 — Examples 2.1–2.2: nested banking transactions.
//!
//! Measures: transfer latency; cost of relative commit (rollback of a
//! committed-then-doomed withdraw); serializable concurrent transfers vs.
//! transfer count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use td_bench::report_row;
use td_engine::Engine;
use td_workflow::{serializable_transfers, transfer_goal, Bank};

fn bench(c: &mut Criterion) {
    let bank = Bank::new(&[("acct1", 1_000_000), ("acct2", 1_000_000)]);
    let scenario = bank.scenario();
    let engine = Engine::new(scenario.program.clone());

    c.bench_function("e01/transfer_commit", |b| {
        let goal = transfer_goal(10, "acct1", "acct2");
        b.iter(|| {
            let out = engine.solve(&goal, &scenario.db).unwrap();
            assert!(out.is_success());
        });
    });

    c.bench_function("e01/transfer_rollback", |b| {
        // Deposit target does not exist: withdraw executes, then the whole
        // nested transaction rolls back (Example 2.2's relative commit).
        let goal = transfer_goal(10, "acct1", "ghost");
        b.iter(|| {
            let out = engine.solve(&goal, &scenario.db).unwrap();
            assert!(!out.is_success());
        });
    });

    let mut group = c.benchmark_group("e01/serializable_transfers");
    for n in [1usize, 2, 4, 8] {
        let transfers: Vec<(i64, &str, &str)> = (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    (5, "acct1", "acct2")
                } else {
                    (5, "acct2", "acct1")
                }
            })
            .collect();
        let goal = serializable_transfers(&transfers);
        group.bench_with_input(BenchmarkId::from_parameter(n), &goal, |b, goal| {
            b.iter(|| {
                let out = engine.solve(goal, &scenario.db).unwrap();
                assert!(out.is_success());
            });
        });
        let out = engine.solve(&goal, &scenario.db).unwrap();
        report_row(
            "E1",
            &format!("transfers={n}"),
            "search steps",
            out.stats().steps as f64,
            "steps",
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).warm_up_time(std::time::Duration::from_millis(400)).measurement_time(std::time::Duration::from_millis(1500));
    targets = bench
}
criterion_main!(benches);
