//! E8 — Theorem 4.7: nonrecursive TD collapses below PTIME.
//!
//! Measures: k-hop query/transaction time vs. database size (polynomial
//! growth) and vs. hop count at fixed data.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use td_bench::{report_row, run_ok};
use td_machines::nonrec;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e08/db_size");
    for nodes in [10usize, 20, 40, 80] {
        let edges = nodes * 4;
        let scenario = nonrec::khop(nodes, edges, 3, 42);
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &scenario, |b, s| {
            b.iter(|| run_ok(s));
        });
        let out = run_ok(&scenario);
        report_row(
            "E8",
            &format!("|V|={nodes} |E|={edges} k=3"),
            "steps",
            out.stats().steps as f64,
            "steps",
        );
    }
    group.finish();

    let mut group = c.benchmark_group("e08/hops");
    for k in [1usize, 2, 3, 4] {
        let scenario = nonrec::khop(20, 80, k, 42);
        group.bench_with_input(BenchmarkId::from_parameter(k), &scenario, |b, s| {
            b.iter(|| run_ok(s));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("e08/update_width");
    for w in [4usize, 8, 16] {
        let scenario = nonrec::promote_pipeline(w, 3);
        group.bench_with_input(BenchmarkId::from_parameter(w), &scenario, |b, s| {
            b.iter(|| run_ok(s));
        });
        let out = run_ok(&scenario);
        report_row(
            "E8",
            &format!("update width={w}"),
            "steps",
            out.stats().steps as f64,
            "steps",
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(400)).measurement_time(std::time::Duration::from_millis(1500));
    targets = bench
}
criterion_main!(benches);
