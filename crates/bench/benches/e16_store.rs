//! E16 — durable store costs: snapshot write/load, WAL append/replay.
//!
//! Not a paper experiment: this quantifies PR 4 (docs/PERSISTENCE.md).
//! Measures, at 100 / 1 000 / 10 000 tuples:
//!
//! * snapshot write (encode + checksum + temp/fsync/rename) and load
//!   (checksum + decode + digest re-verification);
//! * WAL append of one committed transaction (encode + checksum + fsync)
//!   and full-log replay (the recovery path);
//! * warm reopen — `Store::open` on a cleanly closed store (snapshot load
//!   plus replay of the accumulated log), the cost a `td --db` run pays
//!   before its first goal.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::path::PathBuf;
use td_bench::report_row;
use td_core::{Pred, Value};
use td_db::{Database, Delta, DeltaOp, Tuple};
use td_store::{load_snapshot, write_snapshot, Store};

/// A database with `n` tuples in one binary relation.
fn db_of_size(n: i64) -> Database {
    let mut db = Database::new();
    let pred = Pred::new("edge", 2);
    for i in 0..n {
        let t = Tuple::new(vec![Value::Int(i), Value::Int(i + 1)]);
        db = db.insert(pred, &t).expect("insert").0;
    }
    db
}

/// A transaction delta touching `ops` tuples (half inserts, half deletes of
/// just-inserted ones — the churn shape the workflow manager produces).
fn delta_of_size(ops: i64, offset: i64) -> Delta {
    let pred = Pred::new("edge", 2);
    let mut d = Delta::new();
    for i in 0..ops {
        let t = Tuple::new(vec![Value::Int(offset + i), Value::Int(offset + i + 1)]);
        d.push(DeltaOp::Ins(pred, t));
    }
    d
}

fn bench_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("td-bench-e16").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn bench_snapshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("e16/snapshot_write");
    for n in [100i64, 1_000, 10_000] {
        let db = db_of_size(n);
        let dir = bench_dir(&format!("snap-write-{n}"));
        let path = dir.join("snapshot.tds");
        group.bench_with_input(BenchmarkId::from_parameter(n), &db, |b, db| {
            b.iter(|| write_snapshot(&path, db).unwrap());
        });
    }
    group.finish();

    let mut group = c.benchmark_group("e16/snapshot_load");
    for n in [100i64, 1_000, 10_000] {
        let db = db_of_size(n);
        let dir = bench_dir(&format!("snap-load-{n}"));
        let path = dir.join("snapshot.tds");
        write_snapshot(&path, &db).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &path, |b, path| {
            b.iter(|| {
                let (loaded, digest) = load_snapshot(path).unwrap();
                assert_eq!(loaded.digest(), digest);
            });
        });
    }
    group.finish();
    report_row(
        "E16",
        "snapshot",
        "round-trip",
        1.0,
        "checksummed + digest-verified on load",
    );
}

fn bench_wal(c: &mut Criterion) {
    // Append: one fsync'd transaction record on a store of `n` tuples.
    let mut group = c.benchmark_group("e16/wal_append");
    for n in [100i64, 1_000, 10_000] {
        let dir = bench_dir(&format!("wal-append-{n}"));
        let mut store = Store::init(&dir, &db_of_size(n)).unwrap();
        let mut next = n;
        group.bench_with_input(BenchmarkId::from_parameter(n), &(), |b, _| {
            b.iter(|| {
                store.commit(&delta_of_size(8, next)).unwrap();
                next += 8;
            });
        });
    }
    group.finish();

    // Replay: recover a store whose whole state lives in the WAL (empty
    // snapshot + n/8 committed transactions).
    let mut group = c.benchmark_group("e16/wal_replay");
    for n in [100i64, 1_000, 10_000] {
        let dir = bench_dir(&format!("wal-replay-{n}"));
        let mut store = Store::init(&dir, &Database::new()).unwrap();
        let mut offset = 0;
        while offset < n {
            store.commit(&delta_of_size(8, offset)).unwrap();
            offset += 8;
        }
        drop(store);
        group.bench_with_input(BenchmarkId::from_parameter(n), &dir, |b, dir| {
            b.iter(|| {
                let store = Store::open(dir).unwrap();
                assert!(store.recovery().replayed > 0);
            });
        });
    }
    group.finish();
    report_row(
        "E16",
        "wal",
        "fsync per commit",
        1.0,
        "one durable record per committed transaction",
    );
}

fn bench_warm_reopen(c: &mut Criterion) {
    // The `td --db` steady state: a rotated snapshot carrying most tuples
    // plus a short tail of committed transactions.
    let mut group = c.benchmark_group("e16/warm_reopen");
    for n in [100i64, 1_000, 10_000] {
        let dir = bench_dir(&format!("reopen-{n}"));
        let mut store = Store::init(&dir, &db_of_size(n)).unwrap();
        for k in 0..4 {
            store.commit(&delta_of_size(8, n + 8 * k)).unwrap();
        }
        drop(store);
        group.bench_with_input(BenchmarkId::from_parameter(n), &dir, |b, dir| {
            b.iter(|| {
                let store = Store::open(dir).unwrap();
                assert_eq!(store.recovery().replayed, 4);
            });
        });
    }
    group.finish();
    report_row(
        "E16",
        "warm reopen",
        "recovery",
        1.0,
        "snapshot load + short WAL tail replay",
    );
}

fn bench(c: &mut Criterion) {
    bench_snapshot(c);
    bench_wal(c);
    bench_warm_reopen(c);
    let _ = std::fs::remove_dir_all(std::env::temp_dir().join("td-bench-e16"));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_millis(1500));
    targets = bench
}
criterion_main!(benches);
