//! E11 — §6: insert-free TD is classical Datalog.
//!
//! The same transitive-closure workload four ways: the TD interpreter
//! answering a reachability goal top-down, the bottom-up semi-naive
//! evaluator computing the fixpoint, the bottom-up evaluator answering the
//! single query, and the magic-sets rewriting. Shape expectation:
//! bottom-up wins as the data grows for all-pairs work, top-down stays
//! competitive for single ground queries, and magic sets beats naive
//! bottom-up on selective queries.
//!
//! The graph is an acyclic chain: the untabled top-down engine diverges on
//! cyclic data (like Prolog) — which is precisely why §6 points at
//! tabling/magic sets for the Datalog core.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use td_bench::report_row;
use td_core::{Atom, Goal, Term};
use td_engine::{datalog, Engine};
use td_parser::parse_program;

fn chain_program(
    nodes: usize,
    extra_edges: usize,
    seed: u64,
) -> (td_core::Program, td_db::Database) {
    // A connected chain plus random extra *forward* edges (acyclic, so the
    // untabled top-down engine terminates).
    let mut src = String::from("base e/2.\n");
    for i in 0..nodes - 1 {
        src.push_str(&format!("init e(n{i}, n{}).\n", i + 1));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..extra_edges {
        let a = rng.random_range(0..nodes - 1);
        let b = rng.random_range(a + 1..nodes);
        src.push_str(&format!("init e(n{a}, n{b}).\n"));
    }
    src.push_str("path(X, Y) <- e(X, Y).\n");
    src.push_str("path(X, Z) <- e(X, Y) * path(Y, Z).\n");
    let parsed = parse_program(&src).unwrap();
    let db = td_db::Database::with_schema_of(&parsed.program);
    let db = td_engine::load_init(&db, &parsed.init).unwrap();
    (parsed.program, db)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11/topdown_single_query");
    for nodes in [8usize, 16, 32] {
        let (program, db) = chain_program(nodes, nodes / 2, 9);
        let engine = Engine::new(program.clone());
        // Ground query: is the chain end reachable from the start?
        let goal = Goal::atom(
            "path",
            vec![Term::sym("n0"), Term::sym(&format!("n{}", nodes - 1))],
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(nodes),
            &(engine, db.clone(), goal),
            |b, (engine, db, goal)| {
                b.iter(|| assert!(engine.executable(goal, db).unwrap()));
            },
        );
    }
    group.finish();

    // Third interpreter column (PR 6): the same ground query answered by a
    // materialized-view probe. The engine compiles the program's Datalog
    // fragment into maintained views; after the first (seeding) query the
    // probe is an index lookup, independent of chain length.
    let mut group = c.benchmark_group("e11/materialized_single_query");
    for nodes in [8usize, 16, 32] {
        let (program, db) = chain_program(nodes, nodes / 2, 9);
        let engine = Engine::with_config(
            program.clone(),
            td_engine::EngineConfig::default().with_materialize(),
        );
        let goal = Goal::atom(
            "path",
            vec![Term::sym("n0"), Term::sym(&format!("n{}", nodes - 1))],
        );
        // Seed the views so the measured runs are warm probes.
        assert!(engine.executable(&goal, &db).unwrap());
        group.bench_with_input(
            BenchmarkId::from_parameter(nodes),
            &(engine, db.clone(), goal),
            |b, (engine, db, goal)| {
                b.iter(|| assert!(engine.executable(goal, db).unwrap()));
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("e11/bottomup_fixpoint");
    for nodes in [8usize, 16, 32] {
        let (program, db) = chain_program(nodes, nodes / 2, 9);
        group.bench_with_input(
            BenchmarkId::from_parameter(nodes),
            &(program, db),
            |b, (program, db)| {
                b.iter(|| {
                    let fix = datalog::evaluate(program, db).unwrap();
                    assert!(!fix.is_empty());
                });
            },
        );
        let (program, db) = chain_program(nodes, nodes / 2, 9);
        let fix = datalog::evaluate(&program, &db).unwrap();
        report_row(
            "E11",
            &format!("nodes={nodes}"),
            "fixpoint facts",
            fix.len() as f64,
            "facts",
        );
        report_row(
            "E11",
            &format!("nodes={nodes}"),
            "semi-naive iterations",
            fix.iterations as f64,
            "rounds",
        );
    }
    group.finish();

    let mut group = c.benchmark_group("e11/bottomup_single_query");
    for nodes in [8usize, 16, 32] {
        let (program, db) = chain_program(nodes, nodes / 2, 9);
        let atom = Atom::new(
            "path",
            vec![Term::sym("n0"), Term::sym(&format!("n{}", nodes - 1))],
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(nodes),
            &(program, db, atom),
            |b, (program, db, atom)| {
                b.iter(|| {
                    let ans = datalog::query(program, db, atom).unwrap();
                    assert_eq!(ans.len(), 1);
                });
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("e11/tabled_single_query");
    for nodes in [8usize, 16, 32] {
        let (program, db) = chain_program(nodes, nodes / 2, 9);
        let atom = Atom::new(
            "path",
            vec![Term::sym("n0"), Term::sym(&format!("n{}", nodes - 1))],
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(nodes),
            &(program, db, atom),
            |b, (program, db, atom)| {
                b.iter(|| {
                    let (ans, _) = td_engine::tabling::query_tabled(program, db, atom).unwrap();
                    assert_eq!(ans.len(), 1);
                });
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("e11/magic_single_query");
    for nodes in [8usize, 16, 32] {
        let (program, db) = chain_program(nodes, nodes / 2, 9);
        let atom = Atom::new(
            "path",
            vec![Term::sym("n0"), Term::sym(&format!("n{}", nodes - 1))],
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(nodes),
            &(program, db, atom),
            |b, (program, db, atom)| {
                b.iter(|| {
                    let (ans, _) = td_engine::magic::answer(program, db, atom).unwrap();
                    assert_eq!(ans.len(), 1);
                });
            },
        );
        let (program, db) = chain_program(nodes, nodes / 2, 9);
        let atom = Atom::new(
            "path",
            vec![Term::sym("n0"), Term::sym(&format!("n{}", nodes - 1))],
        );
        let (_, stats) = td_engine::magic::answer(&program, &db, &atom).unwrap();
        report_row(
            "E11",
            &format!("nodes={nodes}"),
            "magic derivations",
            stats.derivations as f64,
            "facts",
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(400)).measurement_time(std::time::Duration::from_millis(1500));
    targets = bench
}
criterion_main!(benches);
