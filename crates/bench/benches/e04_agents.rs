//! E4 — Example 3.3: shared resources (qualified agents).
//!
//! Measures: completion time of N concurrent instances vs. size of the
//! agent pool — the paper's point that agents "limit the number of
//! instances that can be active at one time".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use td_bench::{report_row, run_ok};
use td_workflow::{AgentScenarioConfig, Node, WorkflowSpec};

fn spec() -> WorkflowSpec {
    WorkflowSpec::new(
        "wf",
        Node::Seq(vec![Node::task("prep"), Node::task("process")]),
    )
}

fn bench(c: &mut Criterion) {
    let items: Vec<String> = (1..=4).map(|i| format!("w{i}")).collect();

    let mut group = c.benchmark_group("e04/agent_pool");
    for agents in [1usize, 2, 4] {
        let cfg = AgentScenarioConfig::universal_pool(spec(), items.clone(), agents);
        let scenario = cfg.compile();
        group.bench_with_input(BenchmarkId::from_parameter(agents), &scenario, |b, s| {
            b.iter(|| run_ok(s));
        });
        let out = run_ok(&scenario);
        report_row(
            "E4",
            &format!("items=4 agents={agents}"),
            "steps",
            out.stats().steps as f64,
            "steps",
        );
        report_row(
            "E4",
            &format!("items=4 agents={agents}"),
            "backtracks",
            out.stats().backtracks as f64,
            "",
        );
    }
    group.finish();

    let mut group = c.benchmark_group("e04/instances");
    for n in [2usize, 4, 6] {
        let items: Vec<String> = (1..=n).map(|i| format!("w{i}")).collect();
        let cfg = AgentScenarioConfig::universal_pool(spec(), items, 2);
        let scenario = cfg.compile();
        group.bench_with_input(BenchmarkId::from_parameter(n), &scenario, |b, s| {
            b.iter(|| run_ok(s));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(400)).measurement_time(std::time::Duration::from_millis(1500));
    targets = bench
}
criterion_main!(benches);
