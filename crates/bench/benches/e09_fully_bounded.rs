//! E9 — §5: fully bounded TD, the practical blend.
//!
//! Two measurements:
//!
//! 1. the 3SAT guess-and-check encoding (tail recursion + choice) vs. the
//!    DPLL baseline — NP-shaped worst case in the formula, polynomial in
//!    the database;
//! 2. the iterated laboratory protocol (tail recursion = iteration): cost
//!    grows linearly with the iteration count, and the decider's
//!    configuration space stays small — the "substantial reduction" of §5
//!    compared with the RE/EXPTIME fragments of E6/E7.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use td_bench::{report_row, run_ok};
use td_engine::{decider, EngineConfig};
use td_machines::Cnf;
use td_workflow::RepeatProtocol;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e09/3sat_td");
    for vars in [3usize, 5, 7] {
        // Easy-satisfiable instances (few clauses) so the success path
        // dominates; hardness sweeps live in the DPLL comparison below.
        let cnf = Cnf::random_3sat(vars, vars, 5);
        if !cnf.dpll() {
            continue;
        }
        let scenario = cnf.to_td();
        group.bench_with_input(BenchmarkId::from_parameter(vars), &scenario, |b, s| {
            b.iter(|| {
                let out = s
                    .run_with(EngineConfig::default().with_max_steps(10_000_000))
                    .unwrap();
                assert!(out.is_success());
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("e09/3sat_dpll");
    for vars in [3usize, 5, 7] {
        let cnf = Cnf::random_3sat(vars, vars, 5);
        group.bench_with_input(BenchmarkId::from_parameter(vars), &cnf, |b, f| {
            b.iter(|| f.dpll());
        });
    }
    group.finish();

    let mut group = c.benchmark_group("e09/iterated_protocol");
    for attempts in [2i64, 4, 8, 16] {
        let scenario = RepeatProtocol::new(2, attempts).compile();
        group.bench_with_input(BenchmarkId::from_parameter(attempts), &scenario, |b, s| {
            b.iter(|| run_ok(s));
        });
        let out = run_ok(&scenario);
        report_row(
            "E9",
            &format!("protocol attempts={attempts}"),
            "steps (linear)",
            out.stats().steps as f64,
            "steps",
        );
        let d = decider::decide(
            &scenario.program,
            &scenario.goal,
            &scenario.db,
            decider::DeciderConfig::default(),
        )
        .unwrap();
        report_row(
            "E9",
            &format!("protocol attempts={attempts}"),
            "decider configs",
            d.configs as f64,
            "configs",
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(400)).measurement_time(std::time::Duration::from_millis(1500));
    targets = bench
}
criterion_main!(benches);
