//! E7 — Theorem 4.5: the alternation mechanism of sequential TD.
//!
//! QBF evaluation through sequential composition re-executing subgoals.
//! Measures: TD execution time vs. quantifier count (expected ~2^k growth —
//! the exponential that lifts sequential TD to EXPTIME) against the direct
//! recursive evaluator on the same instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use td_bench::report_row;
use td_engine::{decider, EngineConfig};
use td_machines::Qbf;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e07/qbf_td");
    for vars in [2usize, 4, 6, 8] {
        // Use a satisfiable-by-construction tautological matrix so TD
        // explores the full ∀ tree and succeeds: (xᵢ ∨ ¬xᵢ) clauses.
        let qbf = Qbf {
            quants: (0..vars)
                .map(|i| {
                    if i % 2 == 0 {
                        td_machines::Quant::Forall
                    } else {
                        td_machines::Quant::Exists
                    }
                })
                .collect(),
            clauses: (0..vars)
                .map(|i| {
                    vec![
                        td_machines::qbf::Lit {
                            var: i,
                            positive: true,
                        },
                        td_machines::qbf::Lit {
                            var: i,
                            positive: false,
                        },
                    ]
                })
                .collect(),
        };
        assert!(qbf.eval());
        let scenario = qbf.to_td();
        group.bench_with_input(BenchmarkId::from_parameter(vars), &scenario, |b, s| {
            b.iter(|| {
                let out = s
                    .run_with(EngineConfig::default().with_max_steps(50_000_000))
                    .unwrap();
                assert!(out.is_success());
            });
        });
        let out = scenario
            .run_with(EngineConfig::default().with_max_steps(50_000_000))
            .unwrap();
        report_row(
            "E7",
            &format!("quantified vars={vars}"),
            "TD steps (~2^k)",
            out.stats().steps as f64,
            "steps",
        );
        // The memoizing decider shares subtrees: configurations grow far
        // more slowly than interpreter steps.
        let d = decider::decide(
            &scenario.program,
            &scenario.goal,
            &scenario.db,
            decider::DeciderConfig::default(),
        )
        .unwrap();
        report_row(
            "E7",
            &format!("quantified vars={vars}"),
            "decider configs",
            d.configs as f64,
            "configs",
        );
    }
    group.finish();

    // Theorem 4.5 proper: the instance lives in the DATABASE, the
    // sequential-TD evaluator program is fixed — data complexity.
    let mut group = c.benchmark_group("e07/qbf_td_data");
    for vars in [2usize, 4, 6] {
        let qbf = Qbf {
            quants: (0..vars)
                .map(|i| {
                    if i % 2 == 0 {
                        td_machines::Quant::Forall
                    } else {
                        td_machines::Quant::Exists
                    }
                })
                .collect(),
            clauses: (0..vars)
                .map(|i| {
                    vec![
                        td_machines::qbf::Lit {
                            var: i,
                            positive: true,
                        },
                        td_machines::qbf::Lit {
                            var: i,
                            positive: false,
                        },
                    ]
                })
                .collect(),
        };
        let scenario = qbf.to_td_data();
        group.bench_with_input(BenchmarkId::from_parameter(vars), &scenario, |b, s| {
            b.iter(|| {
                let out = s
                    .run_with(EngineConfig::default().with_max_steps(50_000_000))
                    .unwrap();
                assert!(out.is_success());
            });
        });
        let out = scenario
            .run_with(EngineConfig::default().with_max_steps(50_000_000))
            .unwrap();
        report_row(
            "E7",
            &format!("db vars={vars}"),
            "fixed-program steps",
            out.stats().steps as f64,
            "steps",
        );
    }
    group.finish();

    let mut group = c.benchmark_group("e07/qbf_direct");
    for vars in [2usize, 4, 6, 8] {
        let qbf = Qbf::random(vars, vars + 2, 7);
        group.bench_with_input(BenchmarkId::from_parameter(vars), &qbf, |b, q| {
            b.iter(|| q.eval());
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(400)).measurement_time(std::time::Duration::from_millis(1500));
    targets = bench
}
criterion_main!(benches);
