//! E14 — micro-benchmark for the indexed `Relation::select` fast paths.
//!
//! Not a paper experiment: this quantifies the three-regime selection in
//! `td-db` (DESIGN.md §database). Relations store tuples in a persistent
//! ordered tree, so a bound prefix is answered by a range probe and a fully
//! bound pattern by a membership test — both O(log n + answer) — where a
//! naive implementation scans all n tuples. The `scan` series measures that
//! baseline (a `for_each` + `matches` filter over the same relation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use td_bench::report_row;
use td_core::Value;
use td_db::{Relation, Tuple};

/// `edge/2` with `fanout` successors for each of `n / fanout` sources.
fn edges(n: u64, fanout: u64) -> Relation {
    let mut rel = Relation::new(2);
    for src in 0..n / fanout {
        for dst in 0..fanout {
            let t = Tuple::new(vec![
                Value::Int(src as i64),
                Value::Int((src * fanout + dst) as i64),
            ]);
            rel = rel.insert(&t).0;
        }
    }
    rel
}

/// The pre-index behaviour: filter every stored tuple against the pattern.
fn scan(rel: &Relation, pattern: &[Option<Value>]) -> Vec<Tuple> {
    let mut out = Vec::new();
    rel.for_each(|t| {
        if t.matches(pattern) {
            out.push(t.clone());
        }
    });
    out
}

fn bench(c: &mut Criterion) {
    const FANOUT: u64 = 8;
    for n in [1_000u64, 10_000, 100_000] {
        let rel = edges(n, FANOUT);
        let probe_key = Value::Int((n / FANOUT / 2) as i64);
        let prefix = [Some(probe_key), None];
        let member = [Some(probe_key), Some(Value::Int((n / 2) as i64))];
        assert_eq!(rel.select(&prefix).len(), FANOUT as usize);
        let mut scanned = scan(&rel, &prefix);
        scanned.sort();
        assert_eq!(rel.select(&prefix), scanned);
        assert_eq!(rel.select(&member), scan(&rel, &member));

        let mut group = c.benchmark_group(&format!("e14/select_n{n}"));
        group.bench_with_input(BenchmarkId::from_parameter("prefix_probe"), &rel, |b, r| {
            b.iter(|| r.select(&prefix));
        });
        group.bench_with_input(BenchmarkId::from_parameter("prefix_scan"), &rel, |b, r| {
            b.iter(|| scan(r, &prefix));
        });
        group.bench_with_input(BenchmarkId::from_parameter("member_probe"), &rel, |b, r| {
            b.iter(|| r.select(&member));
        });
        group.bench_with_input(BenchmarkId::from_parameter("member_scan"), &rel, |b, r| {
            b.iter(|| scan(r, &member));
        });
        group.finish();

        report_row(
            "E14",
            &format!("tuples={n}"),
            "probe answer size",
            FANOUT as f64,
            "tuples (independent of n)",
        );
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_millis(1000));
    targets = bench
}
criterion_main!(benches);
