//! E17 — dispatch cost of the shared transition kernel.
//!
//! Not a paper experiment: this is the regression guard for the kernel
//! extraction (docs/ARCHITECTURE.md). The refactor routed every backend's
//! hot loop through `kernel::actions`/`kernel::apply`, so this bench
//! re-runs the exact workload shapes whose numbers PR 2 recorded in
//! `BENCH_PR2.json` — the E13 backend ablation pair (serializable
//! transfers on sequential vs work-stealing, the deeply serial RE-machine)
//! and the E15 warm subgoal-cache replay — under `e17/...` group names.
//! Compare each `e17` group against its `e13`/`e15` twin in BENCH_PR2 (or
//! a pre-refactor checkout): numbers within noise mean the seam costs
//! nothing; a systematic regression here is kernel dispatch overhead.
//!
//! The step-count report rows are exact (not timing): they must be
//! *identical* to the pre-refactor counts, because the kernel enumerates
//! the same actions in the same canonical order.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use td_bench::report_row;
use td_db::Database;
use td_engine::{load_init, Engine, EngineConfig, SearchBackend};
use td_parser::parse_program;
use td_workflow::{serializable_transfers, Bank, Scenario};

fn par(threads: usize) -> SearchBackend {
    SearchBackend::Parallel {
        threads,
        deterministic: false,
    }
}

fn run(scenario: &Scenario, cfg: EngineConfig) -> td_engine::Stats {
    let out = scenario.run_with(cfg).expect("no fault");
    assert!(out.is_success());
    out.stats()
}

/// The E13(a) shape: iso-wrapped serializable transfers, witness found
/// fast — measures per-step backend overhead on the happy path.
fn transfer_scenario() -> Scenario {
    let bank = Bank::new(&[("acct1", 1_000), ("acct2", 1_000)]);
    let mut scenario = bank.scenario();
    let transfers: Vec<(i64, &str, &str)> = (0..4)
        .map(|i| {
            if i % 2 == 0 {
                (5, "acct1", "acct2")
            } else {
                (5, "acct2", "acct1")
            }
        })
        .collect();
    scenario.goal = serializable_transfers(&transfers);
    scenario
}

fn bench(c: &mut Criterion) {
    // --- E13(a) twin: backend overhead on serializable transfers ---------
    let scenario = transfer_scenario();
    let mut group = c.benchmark_group("e17/backend_transfers");
    for (label, backend) in [("seq", SearchBackend::Sequential), ("t4", par(4))] {
        let cfg = EngineConfig::default().with_backend(backend);
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &(scenario.clone(), cfg),
            |b, (s, cfg)| {
                b.iter(|| run(s, cfg.clone()));
            },
        );
        let stats = run(&scenario, EngineConfig::default().with_backend(backend));
        report_row(
            "E17",
            "transfers n=4 (vs BENCH_PR2 e13/backend_transfers)",
            &format!("steps {label}"),
            stats.steps as f64,
            "steps",
        );
    }
    group.finish();

    // --- E13(b) twin: the deeply serial RE-machine (nothing to steal) ----
    let machine = td_machines::MinskyMachine::doubling().with_input(td_machines::Counter::C0, 4);
    let scenario = machine.to_td();
    let mut group = c.benchmark_group("e17/backend_machine");
    for (label, backend) in [("seq", SearchBackend::Sequential), ("t4", par(4))] {
        let cfg = EngineConfig::default()
            .with_max_steps(10_000_000)
            .with_backend(backend);
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &(scenario.clone(), cfg),
            |b, (s, cfg)| {
                b.iter(|| run(s, cfg.clone()));
            },
        );
    }
    group.finish();

    // --- E15 twin: warm subgoal-cache replay on the iterated protocol ----
    let path = format!(
        "{}/../../corpus/iterated_protocol.td",
        env!("CARGO_MANIFEST_DIR")
    );
    let src = std::fs::read_to_string(&path).expect("corpus file readable");
    let parsed = parse_program(&src).expect("corpus file parses");
    let db = load_init(&Database::with_schema_of(&parsed.program), &parsed.init)
        .expect("init facts load");
    let goal = parsed.goals[0].goal.clone();
    let plain = Engine::new(parsed.program.clone());
    let cached = Engine::with_config(
        parsed.program.clone(),
        EngineConfig::default().with_subgoal_cache(),
    );
    let mut group = c.benchmark_group("e17/cached_protocol");
    group.bench_function("uncached", |b| {
        b.iter(|| assert!(plain.solve(&goal, &db).unwrap().is_success()));
    });
    group.bench_function("cached", |b| {
        // Warm steady-state replay, like e15/iterated_protocol.
        b.iter(|| assert!(cached.solve(&goal, &db).unwrap().is_success()));
    });
    group.finish();
    let stats = cached.solve(&goal, &db).unwrap().stats();
    report_row(
        "E17",
        "iterated protocol warm (vs BENCH_PR2 e15/iterated_protocol)",
        "cache hits",
        stats.cache_hits as f64,
        "replays",
    );
    report_row(
        "E17",
        "iterated protocol warm (vs BENCH_PR2 e15/iterated_protocol)",
        "cache misses",
        stats.cache_misses as f64,
        "enumerations",
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_millis(1500));
    targets = bench
}
criterion_main!(benches);
