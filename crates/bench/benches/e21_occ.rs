//! E21 — OCC contention: per-relation (read-set) vs whole-database
//! validation.
//!
//! Not a paper experiment: this quantifies PR 10 (docs/SERVE.md). The
//! PR-8 serve bench (E19) measured the group-commit path with validation
//! fixed; here validation is the variable. A closed-loop load generator
//! drives read-modify-write transactions through [`ConcurrentStore`]
//! under both [`Validation`] modes and two sharing shapes:
//!
//! * **disjoint** — client `c` reads and writes only its own `shard{c}`
//!   relation. Per-relation validation proves these commutative commits
//!   never conflict; whole-db validation makes every commit invalidate
//!   every in-flight snapshot.
//! * **overlapping** — every client read-modify-writes the single `hot`
//!   relation, so the conflicts are real and both modes must detect them.
//!
//! Each cell reports commits/sec, the retry count (extra attempts beyond
//! one per commit), and p50/p99 whole-transaction latency. The matching
//! CI gate is `tests/e21_smoke.rs`: zero retries and >= 1.5x throughput
//! for 8 disjoint clients under read-set validation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::path::PathBuf;
use std::time::{Duration, Instant};
use td_bench::report_row;
use td_core::{Pred, Value};
use td_db::{Database, Delta, DeltaOp, ReadSet, Tuple};
use td_store::{ConcurrentStore, TxDecision, TxOptions, Validation};

const OPS_PER_CLIENT: usize = 80;
/// Pre-seeded tuples per relation: the per-transaction scans over these
/// are the read phase that keeps the snapshot-to-validation window open.
const SEED_ROWS: i64 = 512;
/// Scans per transaction — the stand-in for rule-body evaluation.
const SCANS: usize = 8;

fn shard(c: usize) -> Pred {
    Pred::new(&format!("shard{c}"), 2)
}

fn hot() -> Pred {
    Pred::new("hot", 2)
}

fn row(client: usize, n: i64) -> Tuple {
    Tuple::new(vec![Value::Int(client as i64), Value::Int(n)])
}

fn genesis(disjoint: bool, clients: usize) -> Database {
    let mut db = Database::new();
    let preds: Vec<Pred> = if disjoint {
        (0..clients).map(shard).collect()
    } else {
        vec![hot()]
    };
    for p in preds {
        db = db.declare(p);
        for n in 0..SEED_ROWS {
            db = db
                .insert(p, &Tuple::new(vec![Value::Int(-1), Value::Int(-n - 1)]))
                .unwrap()
                .0;
        }
    }
    db
}

/// The transaction's read phase: [`SCANS`] passes over the relation,
/// returning its current length. The yield between scans lets concurrent
/// clients' commits land under the open snapshot — on a single-CPU
/// runner the compute phases would otherwise serialize back-to-back and
/// no snapshot could ever be stale at validation, in either mode.
fn read_phase(snap: &Database, p: Pred) -> usize {
    let mut n = 0;
    for _ in 0..SCANS {
        n = std::hint::black_box(snap.relation(p).map_or(0, |r| r.to_sorted_vec().len()));
        std::thread::yield_now();
    }
    n
}

fn bench_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("td-bench-e21").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

struct LoadResult {
    wall: Duration,
    latencies_us: Vec<u64>,
    commits: u64,
    retries: u64,
}

/// Closed loop: `clients` threads of read-modify-write transactions.
fn drive(
    dir: &std::path::Path,
    clients: usize,
    disjoint: bool,
    validation: Validation,
) -> LoadResult {
    let cs = ConcurrentStore::open_or_init(dir, &genesis(disjoint, clients))
        .unwrap()
        .with_options(TxOptions {
            max_attempts: 10_000,
            backoff: Duration::from_micros(100),
            validation,
        });
    let start = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let cs = cs.clone();
            std::thread::spawn(move || {
                let p = if disjoint { shard(c) } else { hot() };
                let mut lat = Vec::with_capacity(OPS_PER_CLIENT);
                let mut attempts = 0u64;
                for _ in 0..OPS_PER_CLIENT {
                    let t0 = Instant::now();
                    let r = cs
                        .transaction(|snap| {
                            let n = read_phase(snap, p);
                            let mut d = Delta::new();
                            d.push(DeltaOp::Ins(p, row(c, n as i64)));
                            let mut reads = ReadSet::new();
                            reads.record(p);
                            Ok::<_, String>(TxDecision::commit(d, reads, ()))
                        })
                        .unwrap();
                    attempts += u64::from(r.attempts);
                    lat.push(t0.elapsed().as_micros() as u64);
                }
                (lat, attempts)
            })
        })
        .collect();
    let mut latencies_us = Vec::new();
    let mut attempts = 0u64;
    for w in workers {
        let (l, a) = w.join().unwrap();
        latencies_us.extend(l);
        attempts += a;
    }
    let wall = start.elapsed();
    let stats = cs.stats();
    drop(cs.close().unwrap());
    LoadResult {
        wall,
        latencies_us,
        commits: stats.commits,
        retries: attempts - stats.commits,
    }
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx]
}

fn emit(cell: &str, series: &str, r: &LoadResult) {
    let mut lat = r.latencies_us.clone();
    lat.sort_unstable();
    let cps = r.commits as f64 / r.wall.as_secs_f64();
    report_row(
        "E21",
        cell,
        &format!("{series}_commits_per_s"),
        cps,
        "commits/s",
    );
    report_row(
        "E21",
        cell,
        &format!("{series}_retries"),
        r.retries as f64,
        "retries",
    );
    report_row(
        "E21",
        cell,
        &format!("{series}_p50"),
        percentile(&lat, 0.50) as f64,
        "us",
    );
    report_row(
        "E21",
        cell,
        &format!("{series}_p99"),
        percentile(&lat, 0.99) as f64,
        "us",
    );
}

fn bench_occ_contention(c: &mut Criterion) {
    // The load matrix runs once per cell (each cell is already 80 × N
    // fsync-bound transactions); criterion benches one representative op.
    for (sharing, disjoint) in [("disjoint", true), ("overlapping", false)] {
        for clients in [2usize, 4, 8] {
            let cell = format!("clients={clients} sharing={sharing}");
            for (series, validation) in [
                ("read_set", Validation::ReadSet),
                ("whole_db", Validation::WholeDb),
            ] {
                let dir = bench_dir(&format!("{series}-{clients}-{sharing}"));
                let r = drive(&dir, clients, disjoint, validation);
                emit(&cell, series, &r);
            }
        }
    }

    // One criterion-timed op so the harness has a stable unit sample: a
    // single uncontended read-modify-write commit under each validation
    // mode (the delta between the two curves is the validation cost
    // itself, here dominated by the shared fsync).
    let mut group = c.benchmark_group("e21/commit");
    for (series, validation) in [
        ("read_set", Validation::ReadSet),
        ("whole_db", Validation::WholeDb),
    ] {
        let dir = bench_dir(&format!("unit-{series}"));
        let cs = ConcurrentStore::open_or_init(&dir, &genesis(true, 1))
            .unwrap()
            .with_options(TxOptions {
                validation,
                ..TxOptions::default()
            });
        group.bench_function(&format!("single_client_{series}"), |b| {
            b.iter(|| {
                cs.transaction(|snap| {
                    let p = shard(0);
                    let n = read_phase(snap, p);
                    let mut d = Delta::new();
                    d.push(DeltaOp::Ins(p, row(0, n as i64)));
                    let mut reads = ReadSet::new();
                    reads.record(p);
                    Ok::<_, String>(TxDecision::commit(d, reads, ()))
                })
                .unwrap()
            });
        });
        drop(cs.close().unwrap());
    }
    group.finish();
}

criterion_group!(benches, bench_occ_contention);
criterion_main!(benches);
