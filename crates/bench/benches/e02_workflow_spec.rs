//! E2 — Example 3.1: workflow specification.
//!
//! Measures: single-instance execution latency of the paper's workflow vs.
//! task count and vs. concurrent width.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use td_bench::{report_row, run_ok};
use td_workflow::{Node, WorkflowSpec};

fn linear(n: usize) -> WorkflowSpec {
    WorkflowSpec::new(
        "wf",
        Node::Seq((1..=n).map(|i| Node::task(&format!("t{i}"))).collect()),
    )
}

fn wide(n: usize) -> WorkflowSpec {
    WorkflowSpec::new(
        "wf",
        Node::Par((1..=n).map(|i| Node::task(&format!("t{i}"))).collect()),
    )
}

fn bench(c: &mut Criterion) {
    c.bench_function("e02/example_3_1", |b| {
        let scenario = WorkflowSpec::example_3_1().compile(&["w1".to_owned()]);
        b.iter(|| run_ok(&scenario));
    });

    let mut group = c.benchmark_group("e02/serial_tasks");
    for n in [4usize, 8, 16, 32] {
        let scenario = linear(n).compile(&["w1".to_owned()]);
        group.bench_with_input(BenchmarkId::from_parameter(n), &scenario, |b, s| {
            b.iter(|| run_ok(s));
        });
        let out = run_ok(&scenario);
        report_row(
            "E2",
            &format!("serial tasks={n}"),
            "steps",
            out.stats().steps as f64,
            "steps",
        );
    }
    group.finish();

    let mut group = c.benchmark_group("e02/parallel_tasks");
    for n in [4usize, 8, 16, 32] {
        let scenario = wide(n).compile(&["w1".to_owned()]);
        group.bench_with_input(BenchmarkId::from_parameter(n), &scenario, |b, s| {
            b.iter(|| run_ok(s));
        });
        let out = run_ok(&scenario);
        report_row(
            "E2",
            &format!("parallel tasks={n}"),
            "steps",
            out.stats().steps as f64,
            "steps",
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).warm_up_time(std::time::Duration::from_millis(400)).measurement_time(std::time::Duration::from_millis(1500));
    targets = bench
}
criterion_main!(benches);
