//! E6 — §4 / Corollary 4.6: RE-completeness via three concurrent processes.
//!
//! The construction: a 2-counter machine as control + two counter processes
//! over a constant-size database. Measures: TD execution time vs. direct
//! machine simulation as the computation length grows — while the database
//! stays O(1) (reported as a table row), demonstrating that unbounded
//! computation comes from process recursion, not data growth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use td_bench::report_row;
use td_engine::EngineConfig;
use td_machines::{palindrome_tm, Counter, MinskyMachine, RunResult, StackMachine};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e06/doubling_td");
    for n in [1u64, 2, 4, 8] {
        let machine = MinskyMachine::doubling().with_input(Counter::C0, n);
        let scenario = machine.to_td();
        group.bench_with_input(BenchmarkId::from_parameter(n), &scenario, |b, s| {
            b.iter(|| {
                let out = s
                    .run_with(EngineConfig::default().with_max_steps(10_000_000))
                    .unwrap();
                assert!(out.is_success());
            });
        });
        let out = scenario
            .run_with(EngineConfig::default().with_max_steps(10_000_000))
            .unwrap();
        let sol = out.solution().unwrap();
        report_row(
            "E6",
            &format!("double n={n}"),
            "TD steps",
            sol.stats.steps as f64,
            "steps",
        );
        report_row(
            "E6",
            &format!("double n={n}"),
            "final DB tuples",
            sol.db.total_tuples() as f64,
            "tuples (stays O(1))",
        );
    }
    group.finish();

    let mut group = c.benchmark_group("e06/doubling_direct");
    for n in [1u64, 2, 4, 8] {
        let machine = MinskyMachine::doubling().with_input(Counter::C0, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &machine, |b, m| {
            b.iter(|| {
                assert!(matches!(m.run(0, 0, 1_000_000), RunResult::Halted { .. }));
            });
        });
    }
    group.finish();

    // The paper's own proof object: a 2-stack machine moving a word between
    // the stacks, as 3 concurrent TD processes.
    let mut group = c.benchmark_group("e06/stack_reverser_td");
    for len in [1usize, 2, 4] {
        let word: Vec<td_machines::stack::Sym> = (0..len)
            .map(|i| td_machines::stack::Sym((i % 2) as u8))
            .collect();
        let scenario = StackMachine::reverser(&word).to_td();
        group.bench_with_input(BenchmarkId::from_parameter(len), &scenario, |b, s| {
            b.iter(|| {
                let out = s
                    .run_with(EngineConfig::default().with_max_steps(10_000_000))
                    .unwrap();
                assert!(out.is_success());
            });
        });
    }
    group.finish();

    // Full chain: Turing machine -> 2-stack machine -> TD, on accepting
    // palindromes.
    let mut group = c.benchmark_group("e06/tm_chain_td");
    for word in ["0", "11", "010"] {
        let input: Vec<u8> = word.bytes().map(|b| b - b'0' + 1).collect();
        let scenario = palindrome_tm().to_stack_machine(&input).to_td();
        group.bench_with_input(BenchmarkId::from_parameter(word), &scenario, |b, s| {
            b.iter(|| {
                let out = s
                    .run_with(EngineConfig::default().with_max_steps(50_000_000))
                    .unwrap();
                assert!(out.is_success());
            });
        });
        let out = scenario
            .run_with(EngineConfig::default().with_max_steps(50_000_000))
            .unwrap();
        report_row(
            "E6",
            &format!("TM palindrome {word:?}"),
            "TD steps (TM->stacks->TD)",
            out.stats().steps as f64,
            "steps",
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(400)).measurement_time(std::time::Duration::from_millis(1500));
    targets = bench
}
criterion_main!(benches);
