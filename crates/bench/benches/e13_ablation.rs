//! E13 — ablations of the engine's design choices (DESIGN.md §engine).
//!
//! Not a paper experiment: this quantifies the two implementation decisions
//! the reproduction hinges on.
//!
//! 1. **Refuted-configuration memoization.** Without it, a persistently
//!    failing guard inside one concurrent branch is re-refuted under every
//!    interleaving of the others — exponential. With it, the interleaving
//!    lattice is merged.
//! 2. **Scheduling strategy.** Exhaustive (complete, leftmost-first) vs.
//!    randomized-exhaustive vs. round-robin (fair, incomplete) on a
//!    confluent workflow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use td_bench::report_row;
use td_engine::{EngineConfig, Strategy};
use td_workflow::{RepeatProtocol, Scenario, WorkflowSpec};

fn run(scenario: &Scenario, cfg: EngineConfig) -> td_engine::Stats {
    let out = scenario.run_with(cfg).expect("no fault");
    assert!(out.is_success());
    out.stats()
}

fn bench(c: &mut Criterion) {
    // --- memoization ablation on the iterated protocol -------------------
    // (guard `Q >= k` fails every round in every concurrent instance)
    let mut group = c.benchmark_group("e13/memo");
    for (label, memo) in [("on", true), ("off", false)] {
        // Keep the instance small enough that memo-off terminates.
        let scenario = RepeatProtocol::new(2, 3).compile();
        let cfg = EngineConfig {
            memo_failures: memo,
            ..EngineConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &(scenario, cfg),
            |b, (s, cfg)| {
                b.iter(|| run(s, cfg.clone()));
            },
        );
    }
    group.finish();

    // Step-count blowup as the instance grows, memo off vs on.
    for attempts in [2i64, 3, 4] {
        let scenario = RepeatProtocol::new(2, attempts).compile();
        let on = run(&scenario, EngineConfig::default());
        let cfg_off = EngineConfig {
            memo_failures: false,
            ..EngineConfig::default().with_max_steps(50_000_000)
        };
        let off = run(&scenario, cfg_off);
        report_row(
            "E13",
            &format!("protocol attempts={attempts}"),
            "steps memo=on",
            on.steps as f64,
            "steps",
        );
        report_row(
            "E13",
            &format!("protocol attempts={attempts}"),
            "steps memo=off",
            off.steps as f64,
            "steps",
        );
    }

    // --- strategy ablation on a confluent multi-instance workflow --------
    let spec = WorkflowSpec::example_3_1();
    let items: Vec<String> = (1..=3).map(|i| format!("w{i}")).collect();
    let scenario = spec.compile(&items);
    let mut group = c.benchmark_group("e13/strategy");
    for (label, strat) in [
        ("exhaustive", Strategy::Exhaustive),
        ("random", Strategy::ExhaustiveRandom(7)),
        ("round_robin", Strategy::RoundRobin),
    ] {
        let cfg = EngineConfig::default().with_strategy(strat);
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &(scenario.clone(), cfg),
            |b, (s, cfg)| {
                b.iter(|| run(s, cfg.clone()));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(400)).measurement_time(std::time::Duration::from_millis(1500));
    targets = bench
}
criterion_main!(benches);
