//! E13 — ablations of the engine's design choices (DESIGN.md §engine).
//!
//! Not a paper experiment: this quantifies the two implementation decisions
//! the reproduction hinges on.
//!
//! 1. **Refuted-configuration memoization.** Without it, a persistently
//!    failing guard inside one concurrent branch is re-refuted under every
//!    interleaving of the others — exponential. With it, the interleaving
//!    lattice is merged.
//! 2. **Scheduling strategy.** Exhaustive (complete, leftmost-first) vs.
//!    randomized-exhaustive vs. round-robin (fair, incomplete) on a
//!    confluent workflow.
//! 3. **Search backend.** Sequential backtracking vs. the work-stealing
//!    parallel backend at 1/2/4/8 workers, on three workload shapes:
//!    E1 serializable transfers (finds a witness fast — measures overhead),
//!    E6 RE-machine doubling (deep serial recursion — no parallelism to
//!    mine), and a failure-heavy concurrent goal (the space must be
//!    exhausted — where the shared claim table and extra workers pay off).
//!    Pipe `cargo bench` output through `bench_report` for the
//!    sequential-baseline speedup column.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use td_bench::report_row;
use td_engine::{EngineConfig, SearchBackend, Strategy};
use td_workflow::{serializable_transfers, Bank, RepeatProtocol, Scenario, WorkflowSpec};

fn run(scenario: &Scenario, cfg: EngineConfig) -> td_engine::Stats {
    let out = scenario.run_with(cfg).expect("no fault");
    assert!(out.is_success());
    out.stats()
}

fn bench(c: &mut Criterion) {
    // --- memoization ablation on the iterated protocol -------------------
    // (guard `Q >= k` fails every round in every concurrent instance)
    let mut group = c.benchmark_group("e13/memo");
    for (label, memo) in [("on", true), ("off", false)] {
        // Keep the instance small enough that memo-off terminates.
        let scenario = RepeatProtocol::new(2, 3).compile();
        let cfg = EngineConfig {
            memo_failures: memo,
            ..EngineConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &(scenario, cfg),
            |b, (s, cfg)| {
                b.iter(|| run(s, cfg.clone()));
            },
        );
    }
    group.finish();

    // Step-count blowup as the instance grows, memo off vs on.
    for attempts in [2i64, 3, 4] {
        let scenario = RepeatProtocol::new(2, attempts).compile();
        let on = run(&scenario, EngineConfig::default());
        let cfg_off = EngineConfig {
            memo_failures: false,
            ..EngineConfig::default().with_max_steps(50_000_000)
        };
        let off = run(&scenario, cfg_off);
        report_row(
            "E13",
            &format!("protocol attempts={attempts}"),
            "steps memo=on",
            on.steps as f64,
            "steps",
        );
        report_row(
            "E13",
            &format!("protocol attempts={attempts}"),
            "steps memo=off",
            off.steps as f64,
            "steps",
        );
    }

    // --- strategy ablation on a confluent multi-instance workflow --------
    let spec = WorkflowSpec::example_3_1();
    let items: Vec<String> = (1..=3).map(|i| format!("w{i}")).collect();
    let scenario = spec.compile(&items);
    let mut group = c.benchmark_group("e13/strategy");
    for (label, strat) in [
        ("exhaustive", Strategy::Exhaustive),
        ("random", Strategy::ExhaustiveRandom(7)),
        ("round_robin", Strategy::RoundRobin),
    ] {
        let cfg = EngineConfig::default().with_strategy(strat);
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &(scenario.clone(), cfg),
            |b, (s, cfg)| {
                b.iter(|| run(s, cfg.clone()));
            },
        );
    }
    group.finish();

    // --- search-backend ablation ------------------------------------------
    let backends: [(&str, SearchBackend); 5] = [
        ("seq", SearchBackend::Sequential),
        ("t1", par(1)),
        ("t2", par(2)),
        ("t4", par(4)),
        ("t8", par(8)),
    ];

    // (a) E1 serializable transfers: iso-wrapped, a witness exists and the
    // leftmost schedule finds it — measures backend overhead on the happy path.
    let bank = Bank::new(&[("acct1", 1_000), ("acct2", 1_000)]);
    let mut scenario = bank.scenario();
    let transfers: Vec<(i64, &str, &str)> = (0..4)
        .map(|i| {
            if i % 2 == 0 {
                (5, "acct1", "acct2")
            } else {
                (5, "acct2", "acct1")
            }
        })
        .collect();
    scenario.goal = serializable_transfers(&transfers);
    let mut group = c.benchmark_group("e13/backend_transfers");
    for (label, backend) in backends {
        let cfg = EngineConfig::default().with_backend(backend);
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &(scenario.clone(), cfg),
            |b, (s, cfg)| {
                b.iter(|| run(s, cfg.clone()));
            },
        );
        let stats = run(&scenario, EngineConfig::default().with_backend(backend));
        report_row(
            "E13",
            "transfers n=4",
            &format!("steps {label}"),
            stats.steps as f64,
            "steps",
        );
    }
    group.finish();

    // (b) E6 RE-machine: one deeply serial recursion — an adversarial shape
    // for the parallel backend (nothing to steal; pure scheduler overhead).
    let machine = td_machines::MinskyMachine::doubling().with_input(td_machines::Counter::C0, 4);
    let scenario = machine.to_td();
    let mut group = c.benchmark_group("e13/backend_machine");
    for (label, backend) in backends {
        let cfg = EngineConfig::default()
            .with_max_steps(10_000_000)
            .with_backend(backend);
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &(scenario.clone(), cfg),
            |b, (s, cfg)| {
                b.iter(|| run(s, cfg.clone()));
            },
        );
    }
    group.finish();

    // (c) Failure-heavy: concurrent non-isolated transfers where one leg
    // overdraws in every schedule — the whole interleaving space must be
    // refuted. The parallel backend's shared claim table expands each
    // distinct configuration once, so it does strictly less search work.
    let scenario = refutation_scenario(2);
    let mut group = c.benchmark_group("e13/backend_refute");
    for (label, backend) in backends {
        let cfg = EngineConfig::default()
            .with_max_steps(100_000_000)
            .with_backend(backend);
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &(scenario.clone(), cfg.clone()),
            |b, (s, cfg)| {
                b.iter(|| {
                    let out = s.run_with(cfg.clone()).expect("no fault");
                    assert!(!out.is_success());
                });
            },
        );
        let out = scenario.run_with(cfg).expect("no fault");
        report_row(
            "E13",
            "refute transfers n=2",
            &format!("steps {label}"),
            out.stats().steps as f64,
            "steps",
        );
    }
    group.finish();
}

fn par(threads: usize) -> SearchBackend {
    SearchBackend::Parallel {
        threads,
        deterministic: false,
    }
}

/// `n` feasible concurrent transfers plus one that overdraws everywhere:
/// inexecutable, so every backend must exhaust the interleaving space.
fn refutation_scenario(n: usize) -> Scenario {
    use td_core::{Goal, Term};
    let bank = Bank::new(&[("acct1", 30), ("acct2", 30), ("acct3", 30)]);
    let mut scenario = bank.scenario();
    let mut legs: Vec<Goal> = (0..n)
        .map(|i| {
            let (from, to) = if i % 2 == 0 {
                ("acct1", "acct2")
            } else {
                ("acct2", "acct1")
            };
            Goal::atom(
                "transfer",
                vec![Term::int(5), Term::sym(from), Term::sym(to)],
            )
        })
        .collect();
    legs.push(Goal::atom(
        "transfer",
        vec![Term::int(1_000), Term::sym("acct3"), Term::sym("acct1")],
    ));
    scenario.goal = Goal::par(legs);
    scenario
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(400)).measurement_time(std::time::Duration::from_millis(1500));
    targets = bench
}
criterion_main!(benches);
