//! E15 — incremental state digests + subtransaction answer cache.
//!
//! Not a paper experiment: this quantifies PR 2 (docs/CACHING.md).
//! Measures: (a) that `Database::digest()` is O(1) — maintained
//! incrementally on every update, so reading it is size-independent;
//! (b) the wall-clock effect of the subgoal answer cache on iterated
//! workloads (the repeated-protocol idiom of [26], E1's serializable
//! transfer blocks, E12's isolated agent claims), with the hit/miss
//! counters that explain the numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use td_bench::report_row;
use td_db::{Database, Tuple};
use td_engine::{load_init, Engine, EngineConfig};
use td_parser::parse_program;
use td_workflow::{serializable_transfers, AgentScenarioConfig, Bank, Node, WorkflowSpec};

/// A database with `n` tuples in one binary relation.
fn db_of_size(n: i64) -> Database {
    let mut db = Database::new();
    let pred = td_core::Pred::new("edge", 2);
    for i in 0..n {
        let t = Tuple::new(vec![td_core::Value::Int(i), td_core::Value::Int(i + 1)]);
        db = db.insert(pred, &t).expect("insert").0;
    }
    db
}

fn load_corpus(name: &str) -> (td_core::Program, Database, td_core::Goal) {
    let path = format!("{}/../../corpus/{name}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).expect("corpus file readable");
    let parsed = parse_program(&src).expect("corpus file parses");
    let db = load_init(&Database::with_schema_of(&parsed.program), &parsed.init)
        .expect("init facts load");
    (parsed.program, db, parsed.goals[0].goal.clone())
}

fn bench_digest(c: &mut Criterion) {
    let mut group = c.benchmark_group("e15/digest");
    for n in [100i64, 1_000, 10_000] {
        let db = db_of_size(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &db, |b, db| {
            b.iter(|| db.digest());
        });
    }
    group.finish();
    report_row(
        "E15",
        "digest() read",
        "cost",
        1.0,
        "cached u128 read (independent of db size)",
    );
}

/// Benchmark one goal under both configurations and report the cache
/// counters of the cached run.
fn bench_cached_vs_uncached(
    c: &mut Criterion,
    group_name: &str,
    program: &td_core::Program,
    goal: &td_core::Goal,
    db: &Database,
    expect_success: bool,
) {
    let plain = Engine::new(program.clone());
    let cached = Engine::with_config(
        program.clone(),
        EngineConfig::default().with_subgoal_cache(),
    );
    let mut group = c.benchmark_group(group_name);
    group.bench_function("uncached", |b| {
        b.iter(|| {
            let out = plain.solve(goal, db).unwrap();
            assert_eq!(out.is_success(), expect_success);
        });
    });
    group.bench_function("cached", |b| {
        // The engine keeps its cache across iterations, so this measures
        // the warm (steady-state) replay cost — the intended deployment.
        b.iter(|| {
            let out = cached.solve(goal, db).unwrap();
            assert_eq!(out.is_success(), expect_success);
        });
    });
    group.finish();
    let stats = cached.solve(goal, db).unwrap().stats();
    let cache = cached.subgoal_cache().expect("cache enabled");
    report_row(
        group_name,
        "warm run",
        "cache hits",
        stats.cache_hits as f64,
        "replays",
    );
    report_row(
        group_name,
        "warm run",
        "cache misses",
        stats.cache_misses as f64,
        "enumerations",
    );
    report_row(
        group_name,
        "lifetime",
        "hit rate",
        if cache.hits() + cache.misses() > 0 {
            100.0 * cache.hits() as f64 / (cache.hits() + cache.misses()) as f64
        } else {
            0.0
        },
        "%",
    );
}

fn bench(c: &mut Criterion) {
    bench_digest(c);

    let (program, db, goal) = load_corpus("iterated_protocol.td");
    bench_cached_vs_uncached(c, "e15/iterated_protocol", &program, &goal, &db, true);

    let bank = Bank::new(&[("acct1", 1_000_000), ("acct2", 1_000_000)]);
    let scenario = bank.scenario();
    let transfers: Vec<(i64, &str, &str)> = (0..6)
        .map(|i| {
            if i % 2 == 0 {
                (5, "acct1", "acct2")
            } else {
                (5, "acct2", "acct1")
            }
        })
        .collect();
    let goal = serializable_transfers(&transfers);
    bench_cached_vs_uncached(
        c,
        "e15/serializable_transfers",
        &scenario.program,
        &goal,
        &scenario.db,
        true,
    );

    let spec = WorkflowSpec::new("wf", Node::Seq(vec![Node::task("t1"), Node::task("t2")]));
    let items: Vec<String> = (1..=3).map(|i| format!("w{i}")).collect();
    let agents = AgentScenarioConfig::universal_pool(spec, items, 2).compile();
    bench_cached_vs_uncached(
        c,
        "e15/isolated_claims",
        &agents.program,
        &agents.goal,
        &agents.db,
        true,
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_millis(1500));
    targets = bench
}
criterion_main!(benches);
