//! E5 — Example 3.4: networks of cooperating workflows.
//!
//! Measures: rendezvous cost vs. number of synchronization points (the
//! genome-map two-subflow shape of [26]); producer/consumer pipeline cost
//! vs. item count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use td_bench::{report_row, run_ok};
use td_workflow::{Pipeline, SyncPair};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e05/sync_points");
    for k in [1usize, 2, 4, 8] {
        let scenario = SyncPair::new(k).compile();
        group.bench_with_input(BenchmarkId::from_parameter(k), &scenario, |b, s| {
            b.iter(|| run_ok(s));
        });
        let out = run_ok(&scenario);
        report_row(
            "E5",
            &format!("sync points={k}"),
            "steps",
            out.stats().steps as f64,
            "steps",
        );
    }
    group.finish();

    let mut group = c.benchmark_group("e05/pipeline_items");
    for n in [2usize, 4, 8] {
        let scenario = Pipeline::new(n).compile();
        group.bench_with_input(BenchmarkId::from_parameter(n), &scenario, |b, s| {
            b.iter(|| run_ok(s));
        });
        let out = run_ok(&scenario);
        report_row(
            "E5",
            &format!("pipeline items={n}"),
            "steps",
            out.stats().steps as f64,
            "steps",
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(400)).measurement_time(std::time::Duration::from_millis(1500));
    targets = bench
}
criterion_main!(benches);
