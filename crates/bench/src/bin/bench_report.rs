//! Summarize `cargo bench` output as markdown.
//!
//! ```sh
//! cargo bench --workspace 2>&1 | tee bench_output.txt
//! cargo run -p td-bench --bin bench_report < bench_output.txt > BENCH_SUMMARY.md
//! ```

use std::io::Read;

fn main() {
    let mut text = String::new();
    std::io::stdin()
        .read_to_string(&mut text)
        .expect("read stdin");
    let (benches, metrics) = td_bench::parse_bench_output(&text);
    print!("{}", td_bench::render_markdown(&benches, &metrics));
    eprintln!(
        "parsed {} benchmarks, {} metric rows",
        benches.len(),
        metrics.len()
    );
}
