//! Summarize `cargo bench` output as markdown (stdout) and, with
//! `--json PATH`, as a machine-readable JSON file.
//!
//! ```sh
//! cargo bench --workspace 2>&1 | tee bench_output.txt
//! cargo run -p td-bench --bin bench_report -- --json BENCH_PR2.json \
//!     < bench_output.txt > BENCH_SUMMARY.md
//! ```

use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                let Some(p) = args.get(i + 1) else {
                    eprintln!("bench_report: --json requires a path");
                    return ExitCode::from(2);
                };
                json_path = Some(p.clone());
                i += 2;
            }
            other => {
                eprintln!("bench_report: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let mut text = String::new();
    std::io::stdin()
        .read_to_string(&mut text)
        .expect("read stdin");
    let (benches, metrics) = td_bench::parse_bench_output(&text);
    print!("{}", td_bench::render_markdown(&benches, &metrics));
    if let Some(path) = json_path {
        let json = td_bench::render_json(&benches, &metrics);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("bench_report: cannot write `{path}`: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    eprintln!(
        "parsed {} benchmarks, {} metric rows",
        benches.len(),
        metrics.len()
    );
    ExitCode::SUCCESS
}
