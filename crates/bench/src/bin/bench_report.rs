//! Summarize `cargo bench` output as markdown (stdout) and, with
//! `--json PATH`, as a machine-readable JSON file.
//!
//! ```sh
//! cargo bench --workspace 2>&1 | tee bench_output.txt
//! cargo run -p td-bench --bin bench_report -- --json BENCH_PR2.json \
//!     < bench_output.txt > BENCH_SUMMARY.md
//! ```
//!
//! With `--run-report PATH` it instead reads a `td --report` JSON document,
//! validates it against the `td-run-report/v1` schema, and prints a markdown
//! summary of the run (exit code 1 on schema violations).

use std::io::Read;
use std::process::ExitCode;

use td_bench::json::{validate_run_report, Value};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<String> = None;
    let mut run_report: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                let Some(p) = args.get(i + 1) else {
                    eprintln!("bench_report: --json requires a path");
                    return ExitCode::from(2);
                };
                json_path = Some(p.clone());
                i += 2;
            }
            "--run-report" => {
                let Some(p) = args.get(i + 1) else {
                    eprintln!("bench_report: --run-report requires a path");
                    return ExitCode::from(2);
                };
                run_report = Some(p.clone());
                i += 2;
            }
            other => {
                eprintln!("bench_report: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(path) = run_report {
        return summarize_run_report(&path);
    }
    let mut text = String::new();
    std::io::stdin()
        .read_to_string(&mut text)
        .expect("read stdin");
    let (benches, metrics) = td_bench::parse_bench_output(&text);
    print!("{}", td_bench::render_markdown(&benches, &metrics));
    if let Some(path) = json_path {
        let json = td_bench::render_json(&benches, &metrics);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("bench_report: cannot write `{path}`: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    eprintln!(
        "parsed {} benchmarks, {} metric rows",
        benches.len(),
        metrics.len()
    );
    ExitCode::SUCCESS
}

/// Validate one `td --report` document and print a markdown summary.
fn summarize_run_report(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_report: cannot read `{path}`: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match validate_run_report(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("bench_report: `{path}` is not a valid run report: {e}");
            return ExitCode::FAILURE;
        }
    };
    let s = |p: &str| {
        doc.path(p)
            .and_then(Value::as_str)
            .unwrap_or("?")
            .to_owned()
    };
    let n = |p: &str| doc.path(p).and_then(Value::as_f64).unwrap_or(0.0);
    println!("## Run report: {} `{}`", s("command"), s("file"));
    println!();
    println!(
        "outcome: **{}** ({} goals, {} failed), wall {:.3} ms",
        if doc.path("outcome.ok").and_then(Value::as_bool) == Some(true) {
            "ok"
        } else {
            "FAILED"
        },
        n("outcome.goals"),
        n("outcome.failed"),
        n("wall_ms"),
    );
    if let Some(Value::Obj(counters)) = doc.path("metrics.counters") {
        println!();
        println!("| counter | value |");
        println!("|---|---|");
        for (k, v) in counters {
            println!("| {k} | {} |", v.as_f64().unwrap_or(0.0));
        }
    }
    if let Some(digest) = doc.path("final_state.digest").and_then(Value::as_str) {
        println!();
        println!("final state digest: `{digest}`");
    }
    eprintln!("`{path}` is a valid td-run-report/v1 document");
    ExitCode::SUCCESS
}
