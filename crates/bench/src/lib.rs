//! Shared helpers for the benchmark harness (`crates/bench/benches/`).
//!
//! Each bench target regenerates one experiment from EXPERIMENTS.md. The
//! helpers here run scenarios to completion and extract the secondary
//! measurements (search steps, configuration counts, anomaly counts) that
//! accompany the wall-clock numbers Criterion reports.

use td_engine::{EngineConfig, Outcome};
use td_workflow::Scenario;

pub mod json;

/// Run a scenario, asserting success, returning the outcome.
pub fn run_ok(scenario: &Scenario) -> Outcome {
    run_ok_with(scenario, EngineConfig::default())
}

/// Run with a config, asserting success.
pub fn run_ok_with(scenario: &Scenario, config: EngineConfig) -> Outcome {
    let out = scenario
        .run_with(config)
        .expect("benchmark scenario must not fault");
    assert!(
        out.is_success(),
        "benchmark scenario must be executable:\n{}",
        scenario.source
    );
    out
}

/// Print one row of a paper-style results table to stderr (so it survives
/// Criterion's stdout capture).
pub fn report_row(experiment: &str, params: &str, series: &str, value: f64, unit: &str) {
    eprintln!("[{experiment}] {params:<28} {series:<22} {value:>12.2} {unit}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_workflow::LabFlowConfig;

    #[test]
    fn run_ok_runs_a_small_scenario() {
        let s = LabFlowConfig::new(2, 2).compile();
        let out = run_ok(&s);
        assert!(out.stats().steps > 0);
    }
}

/// Parsed benchmark result: Criterion id and midpoint estimate.
#[derive(Clone, PartialEq, Debug)]
pub struct BenchRow {
    pub id: String,
    pub midpoint: String,
}

/// A `report_row` line parsed back.
#[derive(Clone, PartialEq, Debug)]
pub struct MetricRow {
    pub experiment: String,
    pub params: String,
    pub series: String,
    pub value: f64,
    pub unit: String,
}

/// Parse `cargo bench` output: Criterion timings and `[En]` metric rows.
pub fn parse_bench_output(text: &str) -> (Vec<BenchRow>, Vec<MetricRow>) {
    let mut benches = Vec::new();
    let mut metrics = Vec::new();
    let mut pending_id: Option<String> = None;
    for line in text.lines() {
        let trimmed = line.trim_end();
        // Metric rows: [E7] params   series   value unit
        if let Some(rest) = trimmed.strip_prefix('[') {
            if let Some((exp, rest)) = rest.split_once(']') {
                let rest = rest.trim();
                // params is padded to 28, series to 22, value right-aligned 12.
                if rest.len() > 28 + 22 {
                    let params = rest[..28].trim().to_string();
                    let series = rest[28..28 + 22].trim().to_string();
                    let tail = rest[28 + 22..].trim();
                    let mut parts = tail.splitn(2, ' ');
                    if let Some(v) = parts.next().and_then(|v| v.parse::<f64>().ok()) {
                        metrics.push(MetricRow {
                            experiment: exp.to_string(),
                            params,
                            series,
                            value: v,
                            unit: parts.next().unwrap_or("").trim().to_string(),
                        });
                        continue;
                    }
                }
            }
        }
        // Criterion: either "id   time: [lo mid hi]" on one line, or the id
        // alone followed by an indented "time:" line.
        if let Some(idx) = trimmed.find("time:") {
            let id_part = trimmed[..idx].trim();
            let id = if id_part.is_empty() {
                pending_id.take()
            } else {
                Some(id_part.to_string())
            };
            if let Some(id) = id {
                if let Some(bracket) = trimmed[idx..].find('[') {
                    let inner = &trimmed[idx + bracket + 1..];
                    let inner = inner.split(']').next().unwrap_or("");
                    let toks: Vec<&str> = inner.split_whitespace().collect();
                    if toks.len() >= 4 {
                        benches.push(BenchRow {
                            id,
                            midpoint: format!("{} {}", toks[2], toks[3]),
                        });
                    }
                }
            }
            continue;
        }
        // A candidate id line: "e07/qbf_td/8" style.
        if !trimmed.is_empty()
            && !trimmed.starts_with(' ')
            && trimmed.contains('/')
            && !trimmed.contains(' ')
        {
            pending_id = Some(trimmed.to_string());
        }
    }
    (benches, metrics)
}

/// Parse a Criterion time like `"10.245 µs"` into nanoseconds.
pub fn parse_time_ns(s: &str) -> Option<f64> {
    let mut parts = s.split_whitespace();
    let value: f64 = parts.next()?.parse().ok()?;
    let scale = match parts.next()? {
        "ns" => 1.0,
        "µs" | "us" => 1e3,
        "ms" => 1e6,
        "s" => 1e9,
        _ => return None,
    };
    Some(value * scale)
}

/// The sequential-baseline speedup for `id`: when a sibling benchmark
/// `<group>/seq` exists (same id up to the last `/`), the ratio of its time
/// to this row's time — >1 means faster than the sequential backend.
fn speedup_vs_seq(
    id: &str,
    ns: Option<f64>,
    seq_ns: &std::collections::BTreeMap<&str, f64>,
) -> Option<f64> {
    let (group, leaf) = id.rsplit_once('/')?;
    if leaf == "seq" {
        return None; // the baseline itself
    }
    Some(seq_ns.get(group)? / ns?)
}

/// Render the parsed results as a markdown summary grouped by experiment
/// prefix (`e01`, `e02`, …). Benchmark groups that contain a `…/seq` row
/// (the sequential-backend baseline) gain a speedup column for their other
/// rows.
pub fn render_markdown(benches: &[BenchRow], metrics: &[MetricRow]) -> String {
    use std::collections::BTreeMap;
    let mut by_exp: BTreeMap<String, Vec<&BenchRow>> = BTreeMap::new();
    for b in benches {
        let exp = b.id.split('/').next().unwrap_or("misc").to_string();
        by_exp.entry(exp).or_default().push(b);
    }
    let mut seq_ns: BTreeMap<&str, f64> = BTreeMap::new();
    for b in benches {
        if let Some((group, "seq")) = b.id.rsplit_once('/') {
            if let Some(ns) = parse_time_ns(&b.midpoint) {
                seq_ns.insert(group, ns);
            }
        }
    }
    let mut out = String::new();
    out.push_str("# Benchmark summary\n");
    for (exp, rows) in &by_exp {
        out.push_str(&format!(
            "\n## {exp}\n\n| benchmark | time | vs seq |\n|---|---|---|\n"
        ));
        for r in rows {
            let ratio = speedup_vs_seq(&r.id, parse_time_ns(&r.midpoint), &seq_ns)
                .map(|x| format!("{x:.2}×"))
                .unwrap_or_default();
            out.push_str(&format!("| {} | {} | {} |\n", r.id, r.midpoint, ratio));
        }
        let related: Vec<&MetricRow> = metrics
            .iter()
            .filter(|m| m.experiment.to_lowercase() == exp.replace("e0", "e"))
            .collect();
        if !related.is_empty() {
            out.push_str("\n| parameters | series | value |\n|---|---|---|\n");
            for m in related {
                out.push_str(&format!(
                    "| {} | {} | {} {} |\n",
                    m.params, m.series, m.value, m.unit
                ));
            }
        }
    }
    out
}

/// Minimal JSON string escaping (the ids and units we emit only need the
/// standard escapes).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render the parsed results as a machine-readable JSON document:
/// `{"benchmarks": [{id, time, time_ns}], "metrics": [{experiment, params,
/// series, value, unit}]}`. Hand-rolled — the workspace carries no JSON
/// dependency.
pub fn render_json(benches: &[BenchRow], metrics: &[MetricRow]) -> String {
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, b) in benches.iter().enumerate() {
        let ns = parse_time_ns(&b.midpoint)
            .map(|v| format!("{v}"))
            .unwrap_or_else(|| "null".into());
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"time\": \"{}\", \"time_ns\": {}}}{}\n",
            json_escape(&b.id),
            json_escape(&b.midpoint),
            ns,
            if i + 1 < benches.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"metrics\": [\n");
    for (i, m) in metrics.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"experiment\": \"{}\", \"params\": \"{}\", \"series\": \"{}\", \
             \"value\": {}, \"unit\": \"{}\"}}{}\n",
            json_escape(&m.experiment),
            json_escape(&m.params),
            json_escape(&m.series),
            m.value,
            json_escape(&m.unit),
            if i + 1 < metrics.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod parse_tests {
    use super::*;

    const SAMPLE: &str = "\
e01/transfer_commit     time:   [10.177 µs 10.245 µs 10.313 µs]
Benchmarking e07/qbf_td/8
e07/qbf_td/8
                        time:   [1.5625 ms 1.5708 ms 1.5832 ms]
[E7] quantified vars=8             TD steps (~2^k)               597.00 steps
Found 1 outliers among 10 measurements (10.00%)
";

    #[test]
    fn parses_single_line_and_split_line_timings() {
        let (benches, metrics) = parse_bench_output(SAMPLE);
        assert_eq!(benches.len(), 2);
        assert_eq!(benches[0].id, "e01/transfer_commit");
        assert_eq!(benches[0].midpoint, "10.245 µs");
        assert_eq!(benches[1].id, "e07/qbf_td/8");
        assert_eq!(benches[1].midpoint, "1.5708 ms");
        assert_eq!(metrics.len(), 1);
        assert_eq!(metrics[0].experiment, "E7");
        assert_eq!(metrics[0].value, 597.0);
        assert_eq!(metrics[0].series, "TD steps (~2^k)");
    }

    #[test]
    fn speedup_column_uses_the_seq_sibling_as_baseline() {
        let backend = "\
e13/backend_refute/seq  time:   [9.0 ms 10.0 ms 11.0 ms]
e13/backend_refute/t4   time:   [4.0 ms 5.0 ms 6.0 ms]
e13/backend_machine/t4  time:   [1.0 ms 2.0 ms 3.0 ms]
";
        let (benches, metrics) = parse_bench_output(backend);
        let md = render_markdown(&benches, &metrics);
        assert!(md.contains("| e13/backend_refute/t4 | 5.0 ms | 2.00× |"));
        // the baseline row and rows without a seq sibling get no ratio
        assert!(md.contains("| e13/backend_refute/seq | 10.0 ms |  |"));
        assert!(md.contains("| e13/backend_machine/t4 | 2.0 ms |  |"));
    }

    #[test]
    fn parses_time_units() {
        assert_eq!(parse_time_ns("10.5 ns"), Some(10.5));
        assert_eq!(parse_time_ns("2 µs"), Some(2000.0));
        assert_eq!(parse_time_ns("3 ms"), Some(3e6));
        assert_eq!(parse_time_ns("1.5 s"), Some(1.5e9));
        assert_eq!(parse_time_ns("oops"), None);
    }

    #[test]
    fn renders_machine_readable_json() {
        let (benches, metrics) = parse_bench_output(SAMPLE);
        let json = render_json(&benches, &metrics);
        assert!(json.contains("\"id\": \"e01/transfer_commit\""));
        assert!(json.contains("\"time_ns\": 10245"));
        assert!(json.contains("\"experiment\": \"E7\""));
        assert!(json.contains("\"value\": 597"));
        // Valid-shape sanity: balanced braces/brackets, no trailing comma.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert!(!json.contains(",\n  ]"), "{json}");
    }

    #[test]
    fn json_escapes_special_characters() {
        let benches = vec![BenchRow {
            id: "weird\"id\\".into(),
            midpoint: "not a time".into(),
        }];
        let json = render_json(&benches, &[]);
        assert!(json.contains("weird\\\"id\\\\"));
        assert!(json.contains("\"time_ns\": null"));
    }

    #[test]
    fn renders_markdown_tables() {
        let (benches, metrics) = parse_bench_output(SAMPLE);
        let md = render_markdown(&benches, &metrics);
        assert!(md.contains("## e01"));
        assert!(md.contains("| e07/qbf_td/8 | 1.5708 ms |"));
        assert!(md.contains("597 steps"));
    }
}
