//! Minimal JSON reader used to validate `td --report` documents.
//!
//! The workspace deliberately carries no JSON dependency; the engine
//! hand-renders its reports and this module hand-parses them back. It is a
//! plain recursive-descent parser over the full JSON grammar (objects,
//! arrays, strings with escapes, numbers, booleans, null) — small, strict,
//! and sufficient for schema checks in tests and CI.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member of an object, if this is an object and the key exists.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Walk a dotted path of object members.
    pub fn path(&self, path: &str) -> Option<&Value> {
        let mut cur = self;
        for seg in path.split('.') {
            cur = cur.get(seg)?;
        }
        Some(cur)
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parse a complete JSON document (rejects trailing garbage).
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by our writers;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape `\\{}`", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8")?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }
}

/// Validate a `td --report` document: well-formed JSON carrying the
/// `td-run-report/v1` schema tag, both config echoes, a non-empty goal
/// list, and a metrics snapshot whose `steps` counter shows the search
/// actually ran.
pub fn validate_run_report(text: &str) -> Result<Value, String> {
    let doc = parse(text)?;
    let schema = doc
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("missing `schema`")?;
    if schema != "td-run-report/v1" {
        return Err(format!("unexpected schema `{schema}`"));
    }
    for key in ["command", "file"] {
        doc.get(key)
            .and_then(Value::as_str)
            .ok_or_else(|| format!("missing `{key}`"))?;
    }
    doc.get("wall_ms")
        .and_then(Value::as_f64)
        .ok_or("missing `wall_ms`")?;
    for key in ["config.requested", "config.effective"] {
        match doc.path(key) {
            Some(Value::Obj(_)) => {}
            _ => return Err(format!("missing object `{key}`")),
        }
    }
    doc.path("outcome.ok")
        .and_then(Value::as_bool)
        .ok_or("missing `outcome.ok`")?;
    let goals = doc
        .get("goals")
        .and_then(Value::as_arr)
        .ok_or("missing `goals`")?;
    if goals.is_empty() {
        return Err("empty `goals`".into());
    }
    for g in goals {
        g.get("ok")
            .and_then(Value::as_bool)
            .ok_or("goal without `ok`")?;
    }
    let steps = doc
        .path("metrics.counters.steps")
        .and_then(Value::as_f64)
        .ok_or("missing `metrics.counters.steps`")?;
    if steps <= 0.0 {
        return Err("metrics report zero search steps".into());
    }
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_structures() {
        let v =
            parse(r#"{"a": [1, -2.5, 1e3], "b": "x\ny", "c": {"d": null, "e": true}}"#).unwrap();
        assert_eq!(v.path("c.d"), Some(&Value::Null));
        assert_eq!(v.path("c.e").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\ny"));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[1].as_f64(), Some(-2.5));
        assert_eq!(arr[2].as_f64(), Some(1000.0));
    }

    #[test]
    fn parses_unicode_escapes() {
        let v = parse(r#""éA""#).unwrap();
        assert_eq!(v.as_str(), Some("éA"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"open").is_err());
    }

    fn sample_report() -> String {
        r#"{
  "schema": "td-run-report/v1",
  "command": "run",
  "file": "corpus/x.td",
  "wall_ms": 1.25,
  "config": {"requested": {"k": 1}, "effective": {"k": 1}},
  "outcome": {"ok": true, "goals": 1, "failed": 0},
  "goals": [{"goal": "g", "ok": true, "error": null, "counters": {"steps": 4}}],
  "final_state": null,
  "cache": null,
  "metrics": {"runs": 1, "counters": {"steps": 4}, "gauges": {},
              "rule_unfolds": {}, "backtrack_depths": [], "cache_subgoals": {}}
}"#
        .to_owned()
    }

    #[test]
    fn accepts_a_well_formed_report() {
        let doc = validate_run_report(&sample_report()).unwrap();
        assert_eq!(doc.path("outcome.ok").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn rejects_schema_and_shape_violations() {
        let bad_schema = sample_report().replace("td-run-report/v1", "nope/v0");
        assert!(validate_run_report(&bad_schema)
            .unwrap_err()
            .contains("schema"));
        let no_goals = sample_report().replace(
            r#"[{"goal": "g", "ok": true, "error": null, "counters": {"steps": 4}}]"#,
            "[]",
        );
        assert!(validate_run_report(&no_goals)
            .unwrap_err()
            .contains("goals"));
        let zero_steps = sample_report().replace(
            "\"counters\": {\"steps\": 4}, \"gauges\"",
            "\"counters\": {\"steps\": 0}, \"gauges\"",
        );
        assert!(validate_run_report(&zero_steps)
            .unwrap_err()
            .contains("steps"));
    }
}
