//! CI smoke + performance gate for incremental maintenance (experiment
//! E18).
//!
//! The PR-6 acceptance gate: after a small base delta, a warm materialized
//! re-query of a ground reachability question must be at least 5x faster
//! than the uncached top-down search. The margin is wide by construction —
//! a probe is an index lookup while top-down walks the whole chain — so a
//! failure here means the probe path regressed (wrong gating, cold states
//! on every query, maintenance falling back to rebuilds), not noise.

use std::time::Instant;
use td_core::{Goal, Term};
use td_db::Database;
use td_engine::{load_init, Engine, EngineConfig};
use td_parser::parse_program;

const NODES: usize = 256;

fn chain() -> (td_core::Program, Database) {
    let mut src = String::from("base e/2.\n");
    for i in 0..NODES - 1 {
        src.push_str(&format!("init e(n{i}, n{}).\n", i + 1));
    }
    src.push_str("path(X, Y) <- e(X, Y).\n");
    src.push_str("path(X, Z) <- e(X, Y) * path(Y, Z).\n");
    let parsed = parse_program(&src).unwrap();
    let db = Database::with_schema_of(&parsed.program);
    let db = load_init(&db, &parsed.init).unwrap();
    (parsed.program, db)
}

/// Total wall time of `k` solves of `goal` on `db`.
fn time_solves(engine: &Engine, goal: &Goal, db: &Database, k: usize) -> std::time::Duration {
    let start = Instant::now();
    for _ in 0..k {
        assert!(engine.executable(goal, db).unwrap());
    }
    start.elapsed()
}

#[test]
fn materialized_warm_requery_beats_uncached_topdown() {
    let (program, db) = chain();
    let query = Goal::atom(
        "path",
        vec![Term::sym("n0"), Term::sym(&format!("n{}", NODES - 1))],
    );
    let plain = Engine::new(program.clone());
    let mat = Engine::with_config(program, EngineConfig::default().with_materialize());
    let m = mat.materializer().expect("chain program materializes");

    // Seed the views on the initial state, then push a small base delta
    // *through the engine* so the post state is maintained, not rebuilt.
    assert!(mat.executable(&query, &db).unwrap());
    let churn = Goal::seq(vec![
        Goal::ins("e", vec![Term::sym("n0"), Term::sym("n2")]),
        query.clone(),
    ]);
    let sol = mat.solve(&churn, &db).unwrap();
    let db = sol.solution().expect("churn goal succeeds").db.clone();
    assert!(m.maintained_ops() > 0, "the delta must be maintained");

    // Warm lap on the post-delta state for both engines, then measure.
    assert!(mat.executable(&query, &db).unwrap());
    assert!(plain.executable(&query, &db).unwrap());
    let probes_before = m.probes();
    let hits_before = m.state_hits();
    let t_mat = time_solves(&mat, &query, &db, 200);
    assert!(
        m.probes() > probes_before && m.state_hits() > hits_before,
        "warm re-queries must be answered by state-hit probes \
         (probes={}, state_hits={}, rebuilds={})",
        m.probes(),
        m.state_hits(),
        m.rebuilds()
    );
    let t_plain = time_solves(&plain, &query, &db, 200);
    assert!(
        t_mat * 5 <= t_plain,
        "materialized warm re-query must be >= 5x faster than uncached \
         top-down: materialized {t_mat:?}, top-down {t_plain:?}"
    );
}
