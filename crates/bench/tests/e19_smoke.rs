//! CI smoke + performance gate for the serve commit path (experiment E19).
//!
//! The PR-8 acceptance gate: at 8 concurrent low-contention clients, OCC +
//! group commit ([`ConcurrentStore`]) must sustain at least 2x the
//! commits/sec of the pre-serve baseline — the same workload pushed through
//! a mutex-serialized [`Store`] with one fsync per commit. The margin is
//! structural, not noise: with 8 clients enqueueing while the leader
//! fsyncs, the group path retires several commits per fsync, and the fsync
//! is what the commit path is bound by (E16). A failure here means the
//! batching regressed — leadership hand-off serializing on the state lock,
//! groups of one, or acks running ahead of durability.
//!
//! The measured cells are also written to `BENCH_PR8.json` at the repo
//! root (workspace target dir's parent) for the CI artifact upload.

use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};
use td_core::{Pred, Value};
use td_db::{Database, Delta, DeltaOp, Tuple};
use td_store::{ConcurrentStore, Store, TxDecision, TxOptions};

const CLIENTS: usize = 8;
const ACCOUNTS: usize = 64; // low contention: disjoint hot pairs per client
const OPS_PER_CLIENT: usize = 150;

fn pred() -> Pred {
    Pred::new("balance", 2)
}

fn row(i: usize, bal: i64) -> Tuple {
    Tuple::new(vec![Value::sym(&format!("acct{i}")), Value::Int(bal)])
}

fn genesis() -> Database {
    let mut db = Database::new().declare(pred());
    for i in 0..ACCOUNTS {
        db = db.insert(pred(), &row(i, 1_000_000)).unwrap().0;
    }
    db
}

fn balance_of(db: &Database, i: usize) -> i64 {
    let name = Value::sym(&format!("acct{i}"));
    db.relation(pred())
        .unwrap()
        .to_sorted_vec()
        .iter()
        .find_map(|t| match t.values() {
            [n, Value::Int(b)] if *n == name => Some(*b),
            _ => None,
        })
        .unwrap()
}

fn transfer_delta(db: &Database, from: usize, to: usize) -> Delta {
    let (bf, bt) = (balance_of(db, from), balance_of(db, to));
    let mut d = Delta::new();
    d.push(DeltaOp::Del(pred(), row(from, bf)));
    d.push(DeltaOp::Ins(pred(), row(from, bf - 1)));
    d.push(DeltaOp::Del(pred(), row(to, bt)));
    d.push(DeltaOp::Ins(pred(), row(to, bt + 1)));
    d
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("td-bench-e19-smoke").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Client `c`'s disjoint low-contention account pair.
fn pair(c: usize) -> (usize, usize) {
    ((c * 2) % ACCOUNTS, (c * 2 + 1) % ACCOUNTS)
}

struct Measured {
    commits_per_s: f64,
    p50_us: u64,
    p99_us: u64,
    fsyncs: u64,
    mean_group: f64,
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx]
}

fn measured(wall: Duration, mut lat_us: Vec<u64>, fsyncs: u64, records: u64) -> Measured {
    lat_us.sort_unstable();
    Measured {
        commits_per_s: records as f64 / wall.as_secs_f64(),
        p50_us: percentile(&lat_us, 0.50),
        p99_us: percentile(&lat_us, 0.99),
        fsyncs,
        mean_group: records as f64 / fsyncs.max(1) as f64,
    }
}

/// 8 clients through the OCC + group-commit path.
fn run_group_commit(dir: &std::path::Path) -> Measured {
    let cs = ConcurrentStore::open_or_init(dir, &genesis())
        .unwrap()
        .with_options(TxOptions {
            max_attempts: 1_000,
            backoff: Duration::from_micros(10),
            ..TxOptions::default()
        });
    let start = Instant::now();
    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let cs = cs.clone();
            std::thread::spawn(move || {
                let (from, to) = pair(c);
                let mut lat = Vec::with_capacity(OPS_PER_CLIENT);
                for _ in 0..OPS_PER_CLIENT {
                    let t0 = Instant::now();
                    cs.transaction(|db| {
                        Ok::<_, String>(TxDecision::commit_whole_db(
                            transfer_delta(db, from, to),
                            (),
                        ))
                    })
                    .unwrap();
                    lat.push(t0.elapsed().as_micros() as u64);
                }
                lat
            })
        })
        .collect();
    let mut lat = Vec::new();
    for w in workers {
        lat.extend(w.join().unwrap());
    }
    let wall = start.elapsed();
    let stats = cs.stats();
    assert_eq!(stats.commits, (CLIENTS * OPS_PER_CLIENT) as u64);
    assert!(
        stats.groups < stats.commits,
        "group commit must actually batch under 8-client load: \
         {} commits took {} fsyncs (mean group {:.2})",
        stats.commits,
        stats.groups,
        stats.mean_group()
    );
    drop(cs.close().unwrap());
    measured(wall, lat, stats.groups, stats.commits)
}

/// The identical workload, serialized, one fsync per commit.
fn run_per_commit_fsync(dir: &std::path::Path) -> Measured {
    let store = Mutex::new(Store::open_or_init(dir, &genesis()).unwrap());
    let start = Instant::now();
    let lat = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let store = &store;
                scope.spawn(move || {
                    let (from, to) = pair(c);
                    let mut lat = Vec::with_capacity(OPS_PER_CLIENT);
                    for _ in 0..OPS_PER_CLIENT {
                        let t0 = Instant::now();
                        let mut s = store.lock().unwrap();
                        let delta = transfer_delta(s.db(), from, to);
                        s.commit(&delta).unwrap();
                        drop(s);
                        lat.push(t0.elapsed().as_micros() as u64);
                    }
                    lat
                })
            })
            .collect();
        let mut lat = Vec::new();
        for w in workers {
            lat.extend(w.join().unwrap());
        }
        lat
    });
    let wall = start.elapsed();
    let commits = (CLIENTS * OPS_PER_CLIENT) as u64;
    measured(wall, lat, commits, commits)
}

fn cell_json(m: &Measured) -> String {
    format!(
        "{{\"commits_per_s\": {:.1}, \"p50_us\": {}, \"p99_us\": {}, \
         \"fsyncs\": {}, \"mean_group\": {:.2}}}",
        m.commits_per_s, m.p50_us, m.p99_us, m.fsyncs, m.mean_group
    )
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "timing gate: debug-build CPU swamps the fsync being amortized; \
              run with --release (CI serve_smoke job)"
)]
fn group_commit_doubles_per_commit_fsync_throughput() {
    let group = run_group_commit(&temp_dir("group"));
    let single = run_per_commit_fsync(&temp_dir("single"));
    let speedup = group.commits_per_s / single.commits_per_s;

    // BENCH_PR8.json: the numbers behind the gate, uploaded by CI.
    let report = format!(
        "{{\n  \"experiment\": \"e19_serve\",\n  \"clients\": {CLIENTS},\n  \
         \"contention\": \"low\",\n  \"ops_per_client\": {OPS_PER_CLIENT},\n  \
         \"group_commit\": {},\n  \"per_commit_fsync\": {},\n  \
         \"speedup\": {speedup:.2}\n}}\n",
        cell_json(&group),
        cell_json(&single)
    );
    let out = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR8.json");
    std::fs::write(&out, &report).unwrap();
    eprintln!("{report}");

    assert!(
        group.commits_per_s >= 2.0 * single.commits_per_s,
        "group commit must sustain >= 2x per-commit-fsync throughput at \
         {CLIENTS} low-contention clients: grouped {:.0} commits/s \
         (mean group {:.2}) vs per-commit {:.0} commits/s",
        group.commits_per_s,
        group.mean_group,
        single.commits_per_s
    );
}
