//! CI smoke + performance gate for per-relation OCC validation (E21).
//!
//! The PR-10 acceptance gate: 8 concurrent clients whose transactions
//! read and write **disjoint relations** must, under the default
//! per-relation (read-set) validation, commit with **zero** conflict
//! retries — their read sets never intersect another client's write set,
//! so no commit can invalidate another — and must sustain at least 1.5x
//! the commits/sec of the same workload under the whole-database
//! validation fallback, where every commit bumps the one digest everyone
//! compares against and the clients burn their time in retry loops and
//! backoff sleeps.
//!
//! Each transaction deliberately carries a real read phase (a scan of a
//! few hundred tuples) so the snapshot-to-validation window is wide
//! enough that whole-db validation visibly conflicts even when the OS
//! serializes the threads onto few cores.
//!
//! The measured cells are written to `BENCH_PR10.json` at the repo root
//! for the CI artifact upload.

use std::path::PathBuf;
use std::time::{Duration, Instant};
use td_core::{Pred, Value};
use td_db::{Database, Delta, DeltaOp, ReadSet, Tuple};
use td_store::{ConcurrentStore, TxDecision, TxOptions, Validation};

const CLIENTS: usize = 8;
const OPS_PER_CLIENT: usize = 80;
/// Tuples pre-seeded per relation: the per-transaction scans over these
/// are the read phase that opens the conflict window.
const SEED_ROWS: i64 = 512;
/// Scans per transaction. The read phase must be a meaningful fraction
/// of the commit cycle or the snapshot is never stale at validation and
/// whole-db validation looks free; real serve transactions evaluate a
/// rule body here.
const SCANS: usize = 8;

fn shard(c: usize) -> Pred {
    Pred::new(&format!("shard{c}"), 2)
}

fn hot() -> Pred {
    Pred::new("hot", 2)
}

fn row(client: usize, n: i64) -> Tuple {
    Tuple::new(vec![Value::Int(client as i64), Value::Int(n)])
}

/// Disjoint cell: every client owns `shard{c}`. Overlapping cell: all
/// clients read-modify-write the single `hot` relation.
fn genesis(disjoint: bool) -> Database {
    let mut db = Database::new();
    let preds: Vec<Pred> = if disjoint {
        (0..CLIENTS).map(shard).collect()
    } else {
        vec![hot()]
    };
    for p in preds {
        db = db.declare(p);
        // Seed rows live below zero so they never collide with the
        // (client, n >= 0) rows the workload inserts.
        for n in 0..SEED_ROWS {
            db = db
                .insert(p, &Tuple::new(vec![Value::Int(-1), Value::Int(-n - 1)]))
                .unwrap()
                .0;
        }
    }
    db
}

/// The transaction's read phase: [`SCANS`] passes over the relation,
/// returning its current length. `black_box` keeps the scans from being
/// folded into one; the yield between scans lets concurrent clients'
/// commits land under the open snapshot — on a single-CPU runner the
/// compute phases would otherwise serialize back-to-back and no snapshot
/// could ever be stale at validation, in either mode.
fn read_phase(snap: &Database, p: Pred) -> usize {
    let mut n = 0;
    for _ in 0..SCANS {
        n = std::hint::black_box(snap.relation(p).map_or(0, |r| r.to_sorted_vec().len()));
        std::thread::yield_now();
    }
    n
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("td-bench-e21-smoke").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

struct Measured {
    commits_per_s: f64,
    conflicts: u64,
    retries: u64,
    p50_us: u64,
    p99_us: u64,
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx]
}

/// Drive the closed-loop read-modify-write workload and measure it.
fn drive(dir: &std::path::Path, disjoint: bool, validation: Validation) -> Measured {
    let cs = ConcurrentStore::open_or_init(dir, &genesis(disjoint))
        .unwrap()
        .with_options(TxOptions {
            max_attempts: 10_000,
            backoff: Duration::from_micros(100),
            validation,
        });
    let start = Instant::now();
    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let cs = cs.clone();
            std::thread::spawn(move || {
                let p = if disjoint { shard(c) } else { hot() };
                let mut lat = Vec::with_capacity(OPS_PER_CLIENT);
                let mut attempts = 0u64;
                for _ in 0..OPS_PER_CLIENT {
                    let t0 = Instant::now();
                    let r = cs
                        .transaction(|snap| {
                            // Read phase: repeated scans of the relation,
                            // so the snapshot stays live long enough for
                            // concurrent commits to land under it.
                            let n = read_phase(snap, p);
                            let mut d = Delta::new();
                            d.push(DeltaOp::Ins(p, row(c, n as i64)));
                            let mut reads = ReadSet::new();
                            reads.record(p);
                            Ok::<_, String>(TxDecision::commit(d, reads, ()))
                        })
                        .unwrap();
                    attempts += u64::from(r.attempts);
                    lat.push(t0.elapsed().as_micros() as u64);
                }
                (lat, attempts)
            })
        })
        .collect();
    let mut lat = Vec::new();
    let mut attempts = 0u64;
    for w in workers {
        let (l, a) = w.join().unwrap();
        lat.extend(l);
        attempts += a;
    }
    let wall = start.elapsed();
    let stats = cs.stats();
    assert_eq!(stats.commits, (CLIENTS * OPS_PER_CLIENT) as u64);
    drop(cs.close().unwrap());
    lat.sort_unstable();
    Measured {
        commits_per_s: stats.commits as f64 / wall.as_secs_f64(),
        conflicts: stats.conflicts,
        retries: attempts - stats.commits,
        p50_us: percentile(&lat, 0.50),
        p99_us: percentile(&lat, 0.99),
    }
}

fn cell_json(m: &Measured) -> String {
    format!(
        "{{\"commits_per_s\": {:.1}, \"conflicts\": {}, \"retries\": {}, \
         \"p50_us\": {}, \"p99_us\": {}}}",
        m.commits_per_s, m.conflicts, m.retries, m.p50_us, m.p99_us
    )
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "timing gate: debug-build CPU noise swamps the retry/backoff cost \
              being measured; run with --release (CI serve_smoke job)"
)]
fn read_set_validation_removes_disjoint_relation_conflicts() {
    let dj_rs = drive(&temp_dir("disjoint-read-set"), true, Validation::ReadSet);
    let dj_db = drive(&temp_dir("disjoint-whole-db"), true, Validation::WholeDb);
    let ov_rs = drive(&temp_dir("overlap-read-set"), false, Validation::ReadSet);
    let ov_db = drive(&temp_dir("overlap-whole-db"), false, Validation::WholeDb);
    let speedup = dj_rs.commits_per_s / dj_db.commits_per_s;

    // BENCH_PR10.json: the numbers behind the gate, uploaded by CI.
    let report = format!(
        "{{\n  \"experiment\": \"e21_occ\",\n  \"clients\": {CLIENTS},\n  \
         \"ops_per_client\": {OPS_PER_CLIENT},\n  \"seed_rows\": {SEED_ROWS},\n  \
         \"disjoint\": {{\n    \"read_set\": {},\n    \"whole_db\": {}\n  }},\n  \
         \"overlapping\": {{\n    \"read_set\": {},\n    \"whole_db\": {}\n  }},\n  \
         \"disjoint_speedup\": {speedup:.2}\n}}\n",
        cell_json(&dj_rs),
        cell_json(&dj_db),
        cell_json(&ov_rs),
        cell_json(&ov_db)
    );
    let out = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR10.json");
    std::fs::write(&out, &report).unwrap();
    eprintln!("{report}");

    // Gate 1: disjoint read sets cannot conflict — exactly zero retries.
    // This is a structural property of per-relation validation, not a
    // timing margin.
    assert_eq!(
        dj_rs.conflicts, 0,
        "disjoint-relation clients conflicted under read-set validation"
    );
    assert_eq!(dj_rs.retries, 0, "every transaction must land first try");

    // Gate 2: removing those conflicts must be worth >= 1.5x throughput
    // against the whole-db fallback on the identical workload.
    assert!(
        speedup >= 1.5,
        "read-set validation must sustain >= 1.5x whole-db throughput on \
         disjoint relations: {:.0} vs {:.0} commits/s ({speedup:.2}x); \
         whole-db saw {} conflicts, read-set {}",
        dj_rs.commits_per_s,
        dj_db.commits_per_s,
        dj_db.conflicts,
        dj_rs.conflicts
    );

    // Sanity on the contended cell: when everyone really does touch the
    // same relation, read-set validation still detects the conflicts
    // (it is not weaker than whole-db where it matters).
    assert!(
        ov_rs.conflicts > 0,
        "overlapping clients must still conflict under read-set validation"
    );
    assert!(ov_db.conflicts > 0);
}
