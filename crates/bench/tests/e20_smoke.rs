//! CI smoke + gate for the reactive event path (experiment E20).
//!
//! The PR-9 acceptance gate, all through a real server on a real socket:
//!
//! * **Batching**: sustained concurrent ingestion must retire more than one
//!   WAL record per fsync — event appends ride the same group-commit path
//!   as client transactions, and that amortization is the whole point of
//!   acknowledging events only after durability.
//! * **Exactly-once**: a `seq`+`within` pattern spanning two events fires
//!   its trigger transaction exactly once per completed match under
//!   concurrent ingestion. The `fired/1` counter is read-modify-write, so
//!   a doubled or lost execution skews it — the final count must equal the
//!   number of pairs exactly.
//! * **Reporting**: events/sec and end-to-end trigger latency p50/p99 are
//!   written to `BENCH_PR9.json` at the repo root for the CI artifact.
//!
//! The batching ratio is structural (records per fsync), not a wall-clock
//! threshold, so the gate is stable on slow shared runners; it still runs
//! `--release` because debug-build CPU keeps clients from ever queueing
//! behind the leader's fsync, which is the regime being asserted.

use std::path::PathBuf;
use std::time::{Duration, Instant};
use td_engine::EngineConfig;
use td_serve::{Client, ServeSummary, Server};
use td_store::TxOptions;

const CLIENTS: usize = 6;
const PAIRS_PER_CLIENT: usize = 25;

const LAB: &str = r#"
base handled/2.
base fired/1.
init fired(0).
event sample/1.
event result/2.
handle(S, Q) <- fired(N) * del.fired(N) * M is N + 1 * ins.fired(M)
              * ins.handled(S, Q).
on within(seq(sample(S), result(S, Q)), 600000) do handle(S, Q).
"#;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("td-bench-e20-smoke").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn drive() -> (Duration, ServeSummary) {
    let dir = temp_dir("gate");
    let socket = dir.join("td.sock");
    let parsed = td_parser::parse_program(LAB).unwrap();
    let server = Server::open(
        parsed,
        EngineConfig::default(),
        &dir.join("db"),
        TxOptions {
            max_attempts: 1_000,
            backoff: Duration::from_micros(10),
            ..TxOptions::default()
        },
    )
    .unwrap();
    let sock = socket.clone();
    let handle = std::thread::spawn(move || server.serve(&sock));
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok(mut c) = Client::connect(&socket) {
            if c.ping().is_ok() {
                break;
            }
        }
        assert!(Instant::now() < deadline, "server did not come up");
        std::thread::sleep(Duration::from_millis(5));
    }
    let start = Instant::now();
    let workers: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let socket = socket.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&socket).unwrap();
                for j in 0..PAIRS_PER_CLIENT {
                    let s = i * 1_000 + j;
                    assert!(c.event(&format!("sample({s})")).unwrap().is_ok());
                    let r = c.event(&format!("result({s}, 1)")).unwrap();
                    // Ordered within this connection, disjoint S across
                    // clients: the pattern completes here, exactly once.
                    assert!(
                        r.binding("matched").map(str::to_owned) == Some("1".into()),
                        "pair {s}: {r:?}"
                    );
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let wall = start.elapsed();
    // Read the exactly-once witness over the wire before shutdown.
    let mut c = Client::connect(&socket).unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    let total = (CLIENTS * PAIRS_PER_CLIENT) as u64;
    loop {
        let r = c.run("fired(N)").unwrap();
        if r.binding("N") == Some(&total.to_string()) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "fired counter stuck at {:?}, want {total}",
            r.binding("N")
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    c.stop().unwrap();
    // serve() drains the trigger scheduler before returning: the summary
    // carries final counts and the complete latency histogram.
    (wall, handle.join().unwrap().unwrap())
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "load gate: debug-build CPU keeps clients from queueing behind \
              the fsync; run with --release (CI events_smoke job)"
)]
fn burst_ingestion_batches_fsyncs_and_fires_triggers_exactly_once() {
    let (wall, summary) = drive();
    let total_pairs = (CLIENTS * PAIRS_PER_CLIENT) as u64;
    let ev = &summary.events;
    let stats = &summary.stats;

    assert_eq!(ev.ingested, 2 * total_pairs);
    assert_eq!(ev.matched, total_pairs, "every pair completes its pattern");
    assert_eq!(
        ev.fired, total_pairs,
        "each match fires its transaction exactly once"
    );
    let records_per_fsync = stats.grouped_records as f64 / stats.groups.max(1) as f64;
    assert!(
        records_per_fsync > 1.0,
        "burst ingestion must batch: {} records over {} fsyncs",
        stats.grouped_records,
        stats.groups
    );
    assert!(ev.p50_us > 0 && ev.p99_us >= ev.p50_us);

    let events_per_s = ev.ingested as f64 / wall.as_secs_f64();
    let report = format!(
        "{{\n  \"experiment\": \"e20_events\",\n  \"clients\": {CLIENTS},\n  \
         \"pairs_per_client\": {PAIRS_PER_CLIENT},\n  \
         \"events_ingested\": {},\n  \"events_per_s\": {events_per_s:.1},\n  \
         \"triggers_matched\": {},\n  \"triggers_fired\": {},\n  \
         \"triggers_conflicted\": {},\n  \"trigger_p50_us\": {},\n  \
         \"trigger_p99_us\": {},\n  \"records_per_fsync\": \
         {records_per_fsync:.2}\n}}\n",
        ev.ingested, ev.matched, ev.fired, ev.conflicted, ev.p50_us, ev.p99_us
    );
    let out = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR9.json");
    std::fs::write(&out, &report).unwrap();
    eprintln!("{report}");
}
