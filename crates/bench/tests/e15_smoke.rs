//! CI smoke test for the subgoal answer cache (experiment E15).
//!
//! Runs the iterated-protocol corpus workload with the cache enabled and
//! fails if the hit rate is zero — the regression guard for the tabling
//! machinery: a refactor that silently stops producing cache hits (wrong
//! keys, over-strict gating, broken digests) fails here without needing a
//! full benchmark run.

use td_db::Database;
use td_engine::{load_init, Engine, EngineConfig};
use td_parser::parse_program;

fn load_corpus(name: &str) -> (td_core::Program, Database, td_core::Goal) {
    let path = format!("{}/../../corpus/{name}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).expect("corpus file readable");
    let parsed = parse_program(&src).expect("corpus file parses");
    let db = load_init(&Database::with_schema_of(&parsed.program), &parsed.init)
        .expect("init facts load");
    (parsed.program, db, parsed.goals[0].goal.clone())
}

#[test]
fn iterated_protocol_hit_rate_is_nonzero() {
    let (program, db, goal) = load_corpus("iterated_protocol.td");
    let cached = Engine::with_config(
        program.clone(),
        EngineConfig::default().with_subgoal_cache(),
    );
    // Cold run populates the cache; the warm run must replay from it.
    let cold = cached.solve(&goal, &db).expect("cold run");
    assert!(cold.is_success());
    let warm = cached.solve(&goal, &db).expect("warm run");
    assert!(warm.is_success());
    let cache = cached.subgoal_cache().expect("cache enabled");
    assert!(
        cache.hits() > 0,
        "zero cache hits on iterated_protocol.td (misses={}, entries={})",
        cache.misses(),
        cache.len()
    );

    // The cached engine must still report the uncached engine's witness.
    let plain = Engine::new(program);
    let a = plain.solve(&goal, &db).expect("uncached run");
    let (sa, sb) = (
        a.solution().expect("uncached success"),
        warm.solution().expect("cached success"),
    );
    assert_eq!(sa.answer, sb.answer);
    assert_eq!(sa.delta.ops(), sb.delta.ops());
    assert!(sa.db.same_content(&sb.db));
}
