//! A business-process workflow: loan applications.
//!
//! The paper's §3 motivates production workflow with "insurance claims,
//! loan applications, and laboratory samples" as typical work items. This
//! module is the loan-application instance: a pipeline with data-dependent
//! branching (`or` + comparisons), a shared pool of loan officers, and a
//! funds ledger updated transactionally — so approval of more loans than
//! the bank can fund is not just rejected but *unexecutable*.
//!
//! ```text
//! process(W) <- intake(W) * assess(W) * settle(W).
//! assess(W)  <- application(W, Amt) * Amt <= 500 * ins.assessed(W, small).
//! assess(W)  <- application(W, Amt) * Amt > 500 * officer_review(W).
//! settle(W)  <- { approve(W) or reject(W) }.
//! approve(W) <- ... funds check + debit ... (isolated)
//! ```

use crate::scenario::Scenario;
use std::fmt::Write as _;

/// One loan application: a work item and the requested amount.
#[derive(Clone, Debug)]
pub struct Application {
    pub id: String,
    pub amount: i64,
}

/// Configuration for the loan workflow scenario.
#[derive(Clone, Debug)]
pub struct LoanConfig {
    pub applications: Vec<Application>,
    /// Total funds available for approvals.
    pub funds: i64,
    /// Amounts above this threshold need an officer review.
    pub review_threshold: i64,
    /// Number of loan officers (shared agents for reviews).
    pub officers: usize,
}

impl LoanConfig {
    /// `n` applications with the given amounts, a shared officer pool.
    pub fn new(amounts: &[i64], funds: i64) -> LoanConfig {
        LoanConfig {
            applications: amounts
                .iter()
                .enumerate()
                .map(|(i, a)| Application {
                    id: format!("app{}", i + 1),
                    amount: *a,
                })
                .collect(),
            funds,
            review_threshold: 500,
            officers: 1,
        }
    }

    /// Compile to a runnable scenario: all applications processed
    /// concurrently; the goal requires every application settled (approved
    /// or rejected) — and approvals are only executable while funds last.
    pub fn compile(&self) -> Scenario {
        let mut src = String::new();
        let _ = writeln!(src, "% loan-application workflow (production workflow, §3)");
        let _ = writeln!(src, "base application/2.");
        let _ = writeln!(src, "base funds/1.");
        let _ = writeln!(src, "base officer/1.");
        let _ = writeln!(src, "base assessed/2.");
        let _ = writeln!(src, "base approved/1.");
        let _ = writeln!(src, "base rejected/1.");
        for app in &self.applications {
            let _ = writeln!(src, "init application({}, {}).", app.id, app.amount);
        }
        let _ = writeln!(src, "init funds({}).", self.funds);
        for i in 1..=self.officers {
            let _ = writeln!(src, "init officer(o{i}).");
        }
        let t = self.review_threshold;
        let _ = writeln!(src, "process(W) <- assess(W) * settle(W).");
        // Small loans: automatic assessment.
        let _ = writeln!(
            src,
            "assess(W) <- application(W, Amt) * Amt <= {t} * ins.assessed(W, auto)."
        );
        // Large loans: a shared officer performs the review (isolated claim,
        // like Example 3.3's agents).
        let _ = writeln!(
            src,
            "assess(W) <- application(W, Amt) * Amt > {t} \
             * iso {{ officer(O) * del.officer(O) }} \
             * ins.assessed(W, O) * ins.officer(O)."
        );
        // Settlement: approve if funds remain (transactional debit under
        // isolation), otherwise reject. The `or` makes the choice angelic:
        // the engine approves when it can.
        let _ = writeln!(src, "settle(W) <- {{ approve(W) or ins.rejected(W) }}.");
        let _ = writeln!(
            src,
            "approve(W) <- application(W, Amt) * iso {{ funds(F) * F >= Amt \
             * del.funds(F) * G is F - Amt * ins.funds(G) }} * ins.approved(W)."
        );
        let parts: Vec<String> = self
            .applications
            .iter()
            .map(|a| format!("process({})", a.id))
            .collect();
        if parts.is_empty() {
            let _ = writeln!(src, "?- ().");
        } else {
            let _ = writeln!(src, "?- {}.", parts.join(" | "));
        }
        Scenario::from_source(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_core::Pred;
    use td_db::{tuple, Tuple};
    use td_engine::Outcome;

    fn approved(out: &Outcome) -> Vec<Tuple> {
        let mut v = out
            .solution()
            .unwrap()
            .db
            .relation(Pred::new("approved", 1))
            .unwrap()
            .to_vec();
        v.sort();
        v
    }

    fn rejected_count(out: &Outcome) -> usize {
        out.solution()
            .unwrap()
            .db
            .relation(Pred::new("rejected", 1))
            .unwrap()
            .len()
    }

    #[test]
    fn ample_funds_approve_everything() {
        let out = LoanConfig::new(&[100, 200, 300], 10_000)
            .compile()
            .run()
            .unwrap();
        assert_eq!(approved(&out).len(), 3);
        assert_eq!(rejected_count(&out), 0);
    }

    #[test]
    fn funds_limit_forces_rejections() {
        // 3 × 400 requested, 800 available: at most 2 approvals.
        let out = LoanConfig::new(&[400, 400, 400], 800)
            .compile()
            .run()
            .unwrap();
        assert_eq!(approved(&out).len() + rejected_count(&out), 3);
        assert!(approved(&out).len() <= 2);
        // The DFS approves greedily, so it finds the 2-approval settlement.
        assert_eq!(approved(&out).len(), 2);
        // Ledger is consistent: remaining funds = 800 - approved total.
        let funds = out
            .solution()
            .unwrap()
            .db
            .relation(Pred::new("funds", 1))
            .unwrap()
            .to_vec();
        assert_eq!(funds, vec![tuple!(0)]);
    }

    #[test]
    fn zero_funds_reject_all_but_still_settle() {
        let out = LoanConfig::new(&[50, 60], 0).compile().run().unwrap();
        assert_eq!(approved(&out).len(), 0);
        assert_eq!(rejected_count(&out), 2);
    }

    #[test]
    fn large_loans_consume_officer_reviews() {
        let mut cfg = LoanConfig::new(&[1000, 2000], 10_000);
        cfg.officers = 1;
        let out = cfg.compile().run().unwrap();
        let assessed = out
            .solution()
            .unwrap()
            .db
            .relation(Pred::new("assessed", 2))
            .unwrap()
            .to_vec();
        assert_eq!(assessed.len(), 2);
        for t in assessed {
            assert_eq!(t.values()[1], td_core::Value::sym("o1"));
        }
        // Officer returned to the pool.
        assert_eq!(
            out.solution()
                .unwrap()
                .db
                .relation(Pred::new("officer", 1))
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn small_loans_skip_review() {
        let out = LoanConfig::new(&[100], 10_000).compile().run().unwrap();
        assert!(out
            .solution()
            .unwrap()
            .db
            .contains(Pred::new("assessed", 2), &tuple!("app1", "auto")));
    }

    #[test]
    fn ledger_never_goes_negative() {
        // Even with adversarial amounts, every committed state respects the
        // funds invariant because the debit is guarded and isolated.
        for funds in [0i64, 100, 450, 900] {
            let out = LoanConfig::new(&[300, 300, 300], funds)
                .compile()
                .run()
                .unwrap();
            let ledger = out
                .solution()
                .unwrap()
                .db
                .relation(Pred::new("funds", 1))
                .unwrap()
                .to_vec();
            let remaining = ledger[0].values()[0].as_int().unwrap();
            assert!(remaining >= 0, "funds={funds} left {remaining}");
            let spent = approved(&out).len() as i64 * 300;
            assert_eq!(remaining, funds - spent);
        }
    }

    #[test]
    fn empty_config_succeeds() {
        assert!(LoanConfig::new(&[], 100)
            .compile()
            .run()
            .unwrap()
            .is_success());
    }
}
