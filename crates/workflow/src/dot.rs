//! Graphviz (DOT) export of workflow specifications.
//!
//! Workflow systems are conventionally presented as graphs (the paper's
//! related work compiles CTR constraints "into workflow graphs specified in
//! TD" \[34\]); this module renders a [`WorkflowSpec`]'s control flow as a
//! DOT digraph for inspection — serial edges in order, concurrent regions
//! as fork/join pairs, sub-workflows as labeled clusters.

use crate::spec::{Node, WorkflowSpec};
use std::fmt::Write as _;

/// Render the spec as a DOT digraph.
pub fn to_dot(spec: &WorkflowSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", spec.name);
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
    let _ = writeln!(out, "  start [shape=circle, label=\"\"];");
    let _ = writeln!(out, "  end [shape=doublecircle, label=\"\"];");
    let mut r = Renderer {
        out: &mut out,
        next_id: 0,
    };
    let (entry, exit) = r.node(&spec.body);
    let _ = writeln!(out, "  start -> {entry};");
    let _ = writeln!(out, "  {exit} -> end;");
    let _ = writeln!(out, "}}");
    out
}

struct Renderer<'a> {
    out: &'a mut String,
    next_id: u32,
}

impl Renderer<'_> {
    fn fresh(&mut self, prefix: &str) -> String {
        self.next_id += 1;
        format!("{prefix}{}", self.next_id)
    }

    /// Emit a node/subgraph; returns (entry, exit) DOT node names.
    fn node(&mut self, n: &Node) -> (String, String) {
        match n {
            Node::Task(t) => {
                let id = self.fresh("t");
                let _ = writeln!(self.out, "  {id} [label=\"{t}\"];");
                (id.clone(), id)
            }
            Node::Sub(name, body) => {
                let cluster = self.fresh("cluster_");
                let _ = writeln!(self.out, "  subgraph {cluster} {{");
                let _ = writeln!(self.out, "    label=\"{name}\";");
                let (entry, exit) = self.node(body);
                let _ = writeln!(self.out, "  }}");
                (entry, exit)
            }
            Node::Seq(ns) => {
                let mut entry = None;
                let mut prev_exit: Option<String> = None;
                for sub in ns {
                    let (e, x) = self.node(sub);
                    if entry.is_none() {
                        entry = Some(e.clone());
                    }
                    if let Some(p) = prev_exit {
                        let _ = writeln!(self.out, "  {p} -> {e};");
                    }
                    prev_exit = Some(x);
                }
                let entry = entry.unwrap_or_else(|| self.empty());
                let exit = prev_exit.unwrap_or_else(|| entry.clone());
                (entry, exit)
            }
            Node::Par(ns) => {
                let fork = self.fresh("fork");
                let join = self.fresh("join");
                let _ = writeln!(
                    self.out,
                    "  {fork} [shape=diamond, label=\"|\"]; {join} [shape=diamond, label=\"|\"];"
                );
                for sub in ns {
                    let (e, x) = self.node(sub);
                    let _ = writeln!(self.out, "  {fork} -> {e};");
                    let _ = writeln!(self.out, "  {x} -> {join};");
                }
                (fork, join)
            }
        }
    }

    fn empty(&mut self) -> String {
        let id = self.fresh("nop");
        let _ = writeln!(self.out, "  {id} [shape=point];");
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_3_1_renders_fork_join() {
        let dot = to_dot(&WorkflowSpec::example_3_1());
        assert!(dot.starts_with("digraph workflow {"));
        assert!(dot.contains("label=\"task1\""));
        assert!(dot.contains("label=\"subflow\""));
        assert!(dot.contains("shape=diamond"), "fork/join present");
        assert!(dot.contains("start ->"));
        assert!(dot.contains("-> end;"));
        // tasks 3 and 4 are serial inside the subflow
        assert!(dot.contains("label=\"task3\""));
        assert!(dot.contains("label=\"task4\""));
    }

    #[test]
    fn single_task_is_start_to_end() {
        let spec = WorkflowSpec::new("w", Node::task("only"));
        let dot = to_dot(&spec);
        assert!(dot.contains("start -> t1;"));
        assert!(dot.contains("t1 -> end;"));
    }

    #[test]
    fn nested_par_in_seq_wires_through_forks() {
        let spec = WorkflowSpec::new(
            "w",
            Node::Seq(vec![
                Node::task("a"),
                Node::Par(vec![Node::task("b"), Node::task("c")]),
                Node::task("d"),
            ]),
        );
        let dot = to_dot(&spec);
        // a feeds the fork, the join feeds d
        assert!(dot.contains("t1 -> fork"), "{dot}");
        assert!(dot.contains("join3 -> t"), "{dot}");
    }
}
