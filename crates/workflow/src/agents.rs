//! Shared resources: agents assigned to tasks (Example 3.3).
//!
//! "Typically, each task in a workflow is performed by an *agent* (e.g., a
//! machine or a person), only a fixed number of agents is available, and
//! only qualified agents can be assigned to each task. … the agents are
//! resources that must be shared by the various workflow instances" (§3,
//! citing \[42\]). The paper's Example 3.3 refines `task_i(W)` to acquire a
//! qualified agent from the database, perform the work, and release it —
//! which both limits concurrency and leaves an audit trail.
//!
//! This module generates that refinement:
//!
//! ```text
//! task_i(W) <- iso { avail(A) * qual(A, task_i) * del.avail(A) }
//!              * ins.did(W, task_i, A) * ins.avail(A).
//! ```
//!
//! The acquisition is isolated so that checking availability and claiming
//! the agent is atomic. With `atomic_claim = false` the `iso` is dropped —
//! the racy variant used by experiment E12 to demonstrate why isolation
//! matters (two instances can then claim the same agent concurrently;
//! [`crate::metrics::double_claims`] detects it from the committed delta).

use crate::scenario::Scenario;
use crate::spec::WorkflowSpec;
use std::fmt::Write as _;

/// An agent and the tasks it is qualified to perform.
#[derive(Clone, Debug)]
pub struct Agent {
    pub name: String,
    pub qualified_for: Vec<String>,
}

/// Configuration for an agent-constrained workflow scenario.
#[derive(Clone, Debug)]
pub struct AgentScenarioConfig {
    /// The workflow shape (tasks are refined to acquire agents).
    pub spec: WorkflowSpec,
    /// Work items to process (one concurrent instance each).
    pub work_items: Vec<String>,
    /// The agent pool.
    pub agents: Vec<Agent>,
    /// Wrap agent acquisition in `iso { … }` (Example 3.3 done right).
    pub atomic_claim: bool,
}

impl AgentScenarioConfig {
    /// A pool of `n` interchangeable agents qualified for every task of the
    /// spec.
    pub fn universal_pool(spec: WorkflowSpec, work_items: Vec<String>, n: usize) -> Self {
        let tasks: Vec<String> = spec.body.tasks().into_iter().collect();
        let agents = (1..=n)
            .map(|i| Agent {
                name: format!("agent{i}"),
                qualified_for: tasks.clone(),
            })
            .collect();
        AgentScenarioConfig {
            spec,
            work_items,
            agents,
            atomic_claim: true,
        }
    }

    /// Compile to a runnable scenario.
    pub fn compile(&self) -> Scenario {
        let mut src = String::new();
        let _ = writeln!(src, "% Example 3.3: shared agents");
        let _ = writeln!(src, "base item/1.");
        let _ = writeln!(src, "base avail/1.");
        let _ = writeln!(src, "base qual/2.");
        let _ = writeln!(src, "base did/3.");
        for w in &self.work_items {
            let _ = writeln!(src, "init item({w}).");
        }
        for a in &self.agents {
            let _ = writeln!(src, "init avail({}).", a.name);
            for t in &a.qualified_for {
                let _ = writeln!(src, "init qual({}, {t}).", a.name);
            }
        }
        // Entry + sub-workflow rules come from the spec; only the task
        // rules change.
        let mut subs = Vec::new();
        let body = self.spec.body.render(&mut subs);
        let _ = writeln!(src, "{}(W) <- {body}.", self.spec.name);
        for (name, rendered) in subs {
            let _ = writeln!(src, "{name}(W) <- {rendered}.");
        }
        for t in self.spec.body.tasks() {
            let claim = format!("avail(A) * qual(A, {t}) * del.avail(A)");
            let claim = if self.atomic_claim {
                format!("iso {{ {claim} }}")
            } else {
                claim
            };
            let _ = writeln!(
                src,
                "{t}(W) <- item(W) * {claim} * ins.did(W, {t}, A) * ins.avail(A)."
            );
        }
        let parts: Vec<String> = self
            .work_items
            .iter()
            .map(|w| format!("{}({w})", self.spec.name))
            .collect();
        let _ = writeln!(src, "?- {}.", parts.join(" | "));
        Scenario::from_source(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Node;
    use td_core::Pred;
    use td_engine::EngineConfig;

    fn linear_spec(tasks: usize) -> WorkflowSpec {
        WorkflowSpec::new(
            "wf",
            Node::Seq((1..=tasks).map(|i| Node::task(&format!("t{i}"))).collect()),
        )
    }

    #[test]
    fn single_agent_serializes_but_completes() {
        let cfg =
            AgentScenarioConfig::universal_pool(linear_spec(2), vec!["w1".into(), "w2".into()], 1);
        let scenario = cfg.compile();
        let out = scenario.run().unwrap();
        let sol = out.solution().expect("completes with one agent");
        assert_eq!(
            sol.db.relation(Pred::new("did", 3)).unwrap().len(),
            4,
            "2 items × 2 tasks recorded"
        );
        // Agent must be available again at the end.
        assert_eq!(sol.db.relation(Pred::new("avail", 1)).unwrap().len(), 1);
    }

    #[test]
    fn unqualified_agents_block_the_task() {
        let spec = linear_spec(1);
        let cfg = AgentScenarioConfig {
            spec,
            work_items: vec!["w1".into()],
            agents: vec![Agent {
                name: "a1".into(),
                qualified_for: vec!["other_task".into()],
            }],
            atomic_claim: true,
        };
        assert!(!cfg.compile().run().unwrap().is_success());
    }

    #[test]
    fn audit_trail_names_the_agent() {
        let cfg = AgentScenarioConfig::universal_pool(linear_spec(1), vec!["w1".into()], 1);
        let out = cfg.compile().run().unwrap();
        let sol = out.solution().unwrap();
        assert!(sol
            .db
            .contains(Pred::new("did", 3), &td_db::tuple!("w1", "t1", "agent1")));
    }

    #[test]
    fn racy_variant_compiles_and_runs() {
        let mut cfg =
            AgentScenarioConfig::universal_pool(linear_spec(1), vec!["w1".into(), "w2".into()], 2);
        cfg.atomic_claim = false;
        let scenario = cfg.compile();
        assert!(!scenario.source.contains("iso {"));
        assert!(scenario.run().unwrap().is_success());
    }

    #[test]
    fn more_agents_than_items_still_works() {
        let cfg = AgentScenarioConfig::universal_pool(linear_spec(2), vec!["w1".into()], 5);
        let out = cfg.compile().run().unwrap();
        assert!(out.is_success());
        assert_eq!(
            out.solution()
                .unwrap()
                .db
                .relation(Pred::new("avail", 1))
                .unwrap()
                .len(),
            5
        );
    }

    #[test]
    fn round_robin_with_ample_agents() {
        // A fair scheduler with enough agents processes everything.
        let cfg =
            AgentScenarioConfig::universal_pool(linear_spec(1), vec!["w1".into(), "w2".into()], 2);
        let scenario = cfg.compile();
        let out = scenario
            .run_with(EngineConfig::default().with_strategy(td_engine::Strategy::Exhaustive))
            .unwrap();
        assert!(out.is_success());
    }
}
