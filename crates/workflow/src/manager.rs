//! A long-running workflow management system over TD.
//!
//! The paper's setting is a *system*: a database shared by a stream of
//! workflow instances, transactions arriving over time, state monitored
//! continuously (\[25\]: "coordinating the flow of materials … and recording
//! and querying the history of experimental steps"). [`Manager`] is that
//! operational layer on top of the one-shot [`td_engine::Engine`]:
//!
//! * it owns the evolving database;
//! * [`Manager::submit`] runs one goal as a transaction — on success the
//!   database advances, on failure it is untouched (all-or-nothing);
//! * every committed transaction's update log is retained for monitoring;
//! * [`Manager::query`] answers read-only questions against the current
//!   state (derived predicates included, via the bottom-up evaluator when
//!   applicable, else the engine).

use td_core::{Atom, Goal, Program, Value};
use td_db::{Database, Delta, Tuple};
use td_engine::{datalog, Engine, EngineConfig, EngineError, Outcome, Stats};

/// A committed transaction's record.
#[derive(Clone, Debug)]
pub struct Committed {
    /// Sequence number (0-based submission order among commits).
    pub seq: usize,
    /// The goal that ran.
    pub goal: Goal,
    /// Updates it applied.
    pub delta: Delta,
    /// Search statistics.
    pub stats: Stats,
}

/// Outcome of a submission.
#[derive(Clone, Debug)]
pub enum Submitted {
    /// Committed; the database advanced.
    Committed(Committed),
    /// No successful execution: the database is unchanged.
    Aborted { stats: Stats },
}

impl Submitted {
    /// Did the transaction commit?
    pub fn is_committed(&self) -> bool {
        matches!(self, Submitted::Committed(_))
    }
}

/// The workflow management system: program + evolving database + history.
///
/// ```
/// use td_workflow::{Manager, WorkflowSpec};
///
/// let scenario = WorkflowSpec::example_3_1().compile(&["w1".to_owned()]);
/// let mut office = Manager::from_scenario(&scenario);
/// let r = office.submit_text("workflow(w1)").unwrap();
/// assert!(r.is_committed());
/// assert!(office.submit_text("workflow(ghost)").unwrap().is_committed() == false);
/// assert_eq!(office.history().len(), 1); // the abort left no record
/// ```
#[derive(Clone, Debug)]
pub struct Manager {
    engine: Engine,
    db: Database,
    history: Vec<Committed>,
}

impl Manager {
    /// A manager over `program` starting from `db`.
    pub fn new(program: Program, db: Database) -> Manager {
        Manager::with_config(program, db, EngineConfig::default())
    }

    /// With an explicit engine configuration.
    pub fn with_config(program: Program, db: Database, config: EngineConfig) -> Manager {
        Manager {
            engine: Engine::with_config(program, config),
            db,
            history: Vec::new(),
        }
    }

    /// From a compiled scenario (program + init db; the scenario's goal is
    /// *not* auto-submitted).
    pub fn from_scenario(scenario: &crate::Scenario) -> Manager {
        Manager::new(scenario.program.clone(), scenario.db.clone())
    }

    /// The current database state.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The program.
    pub fn program(&self) -> &Program {
        self.engine.program()
    }

    /// Committed transactions, oldest first.
    pub fn history(&self) -> &[Committed] {
        &self.history
    }

    /// Run `goal` as one transaction against the current state.
    pub fn submit(&mut self, goal: &Goal) -> Result<Submitted, EngineError> {
        match self.engine.solve(goal, &self.db)? {
            Outcome::Success(sol) => {
                self.db = sol.db.clone();
                let record = Committed {
                    seq: self.history.len(),
                    goal: goal.clone(),
                    delta: sol.delta.clone(),
                    stats: sol.stats,
                };
                self.history.push(record.clone());
                Ok(Submitted::Committed(record))
            }
            Outcome::Failure { stats } => Ok(Submitted::Aborted { stats }),
        }
    }

    /// Parse and submit a goal written in concrete syntax.
    pub fn submit_text(&mut self, goal_src: &str) -> Result<Submitted, EngineError> {
        let parsed = td_parser::parse_goal(goal_src, self.engine.program())
            .map_err(|e| EngineError::Db(format!("goal does not parse: {e}")))?;
        self.submit(&parsed.goal)
    }

    /// Read-only query: all tuples matching `atom` in the current state.
    /// Base predicates read the store directly; derived predicates evaluate
    /// bottom-up when the program is Datalog-evaluable for them, otherwise
    /// enumerate via the engine (which leaves the database untouched since
    /// the results are discarded — but may be expensive for updateful
    /// predicates).
    pub fn query(&self, atom: &Atom) -> Result<Vec<Tuple>, EngineError> {
        if self.program().is_base(atom.pred) {
            let pattern: Vec<Option<Value>> = atom.args.iter().map(|t| t.as_value()).collect();
            let mut out = self
                .db
                .relation(atom.pred)
                .map(|r| r.select(&pattern))
                .unwrap_or_default();
            out.sort();
            return Ok(out);
        }
        match datalog::query(self.program(), &self.db, atom) {
            Ok(t) => Ok(t),
            Err(_) => {
                // Fall back to engine enumeration of answers.
                let goal = Goal::Atom(atom.clone());
                let sols = self.engine.solutions(&goal, &self.db, 10_000)?;
                let mut out: Vec<Tuple> = sols
                    .solutions
                    .iter()
                    .filter_map(|s| {
                        let vals: Option<Vec<Value>> = atom
                            .args
                            .iter()
                            .map(|t| match t {
                                td_core::Term::Val(v) => Some(*v),
                                td_core::Term::Var(v) => {
                                    s.answer.get(v.0 as usize).and_then(|t| t.as_value())
                                }
                            })
                            .collect();
                        vals.map(Tuple::new)
                    })
                    .collect();
                out.sort();
                out.dedup();
                Ok(out)
            }
        }
    }

    /// Total updates committed so far.
    pub fn total_updates(&self) -> usize {
        self.history.iter().map(|c| c.delta.len()).sum()
    }

    /// Audit the whole committed history against a workflow specification
    /// (see [`crate::audit()`]): concatenates every transaction's update log
    /// and checks task precedence, duplication and completeness per item.
    pub fn audit_against(&self, spec: &crate::WorkflowSpec) -> Vec<crate::Violation> {
        let mut combined = td_db::Delta::new();
        for c in &self.history {
            for op in c.delta.ops() {
                combined.push(op.clone());
            }
        }
        crate::audit::audit(spec, &combined)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkflowSpec;
    use td_core::{Pred, Term};
    use td_db::tuple;

    fn manager() -> Manager {
        let scenario = WorkflowSpec::example_3_1().compile(&[
            "w1".to_owned(),
            "w2".to_owned(),
            "w3".to_owned(),
        ]);
        Manager::from_scenario(&scenario)
    }

    #[test]
    fn submissions_advance_state_transactionally() {
        let mut m = manager();
        let r1 = m.submit_text("workflow(w1)").unwrap();
        assert!(r1.is_committed());
        assert_eq!(m.history().len(), 1);
        // w1's five tasks are done; w2 untouched.
        assert_eq!(m.db().relation(Pred::new("done", 2)).unwrap().len(), 5);

        // A doomed transaction leaves no residue.
        let r2 = m.submit_text("workflow(ghost)").unwrap();
        assert!(!r2.is_committed());
        assert_eq!(m.history().len(), 1);
        assert_eq!(m.db().relation(Pred::new("done", 2)).unwrap().len(), 5);

        let r3 = m.submit_text("workflow(w2) | workflow(w3)").unwrap();
        assert!(r3.is_committed());
        assert_eq!(m.db().relation(Pred::new("done", 2)).unwrap().len(), 15);
        assert_eq!(m.total_updates(), 15);
    }

    #[test]
    fn query_reads_base_relations() {
        let mut m = manager();
        m.submit_text("workflow(w1)").unwrap();
        let done = m
            .query(&Atom::new("done", vec![Term::sym("w1"), Term::var(0)]))
            .unwrap();
        assert_eq!(done.len(), 5);
        let items = m.query(&Atom::new("item", vec![Term::var(0)])).unwrap();
        assert_eq!(items.len(), 3, "items are not consumed by this workflow");
    }

    #[test]
    fn query_answers_derived_predicates_via_engine_fallback() {
        // `workflow` has updates, so the Datalog evaluator refuses and the
        // engine fallback enumerates bindings for which it is executable.
        let m = manager();
        let ans = m.query(&Atom::new("workflow", vec![Term::var(0)])).unwrap();
        assert_eq!(ans.len(), 3);
        assert!(ans.contains(&tuple!("w1")));
    }

    #[test]
    fn query_uses_datalog_for_pure_predicates() {
        let src = "
            base e/2.
            init e(a, b). init e(b, c).
            reach(X, Y) <- e(X, Y).
            reach(X, Z) <- e(X, Y) * reach(Y, Z).
        ";
        let parsed = td_parser::parse_program(src).unwrap();
        let db = Database::with_schema_of(&parsed.program);
        let db = td_engine::load_init(&db, &parsed.init).unwrap();
        let m = Manager::new(parsed.program, db);
        let ans = m
            .query(&Atom::new("reach", vec![Term::sym("a"), Term::var(0)]))
            .unwrap();
        assert_eq!(ans.len(), 2);
    }

    #[test]
    fn audit_against_passes_for_committed_workflows() {
        let spec = WorkflowSpec::example_3_1();
        let mut m = manager();
        m.submit_text("workflow(w1)").unwrap();
        m.submit_text("workflow(w2) | workflow(w3)").unwrap();
        assert!(m.audit_against(&spec).is_empty());
    }

    #[test]
    fn history_records_deltas_in_order() {
        let mut m = manager();
        m.submit_text("workflow(w1)").unwrap();
        m.submit_text("workflow(w2)").unwrap();
        assert_eq!(m.history()[0].seq, 0);
        assert_eq!(m.history()[1].seq, 1);
        assert!(m.history()[0]
            .delta
            .ops()
            .iter()
            .all(|op| op.to_string().contains("w1")));
    }

    #[test]
    fn bad_goal_text_is_an_error_not_a_panic() {
        let mut m = manager();
        assert!(m.submit_text("nonsense(").is_err());
        assert!(m.submit_text("undeclared_pred(w1)").is_err());
    }
}
