//! Workflow simulation: unbounded instance creation (Example 3.2).
//!
//! Example 3.2 of the paper simulates the *operation* of a workflow system:
//! a recursive process picks up work items and spawns a workflow instance
//! for each, concurrently —
//!
//! ```text
//! simulate <- item(W) * del.item(W) * (workflow(W) | simulate).
//! simulate <- ().
//! ```
//!
//! The recursion through `|` creates processes at runtime, one per work
//! item — the pattern that §4 shows makes full TD RE-complete. The
//! *environment* is modeled as just another process that inserts new work
//! items (§3, citing the process-algebra tradition \[62, 51\]):
//! `?- simulate | environment`.

use crate::scenario::Scenario;
use std::fmt::Write as _;

/// How the environment delivers work items.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EnvironmentMode {
    /// All items are inserted before simulation starts
    /// (`?- environment * simulate.`).
    Upfront,
    /// The environment runs concurrently with the simulation
    /// (`?- simulate | environment.` — the paper's formulation).
    Concurrent,
}

/// Configuration for an Example 3.2 simulation scenario.
#[derive(Clone, Debug)]
pub struct SimulationConfig {
    /// Number of work items the environment delivers.
    pub items: usize,
    /// Length of the (linear) workflow each instance performs.
    pub tasks_per_item: usize,
    pub environment: EnvironmentMode,
}

impl SimulationConfig {
    pub fn new(items: usize, tasks_per_item: usize) -> SimulationConfig {
        SimulationConfig {
            items,
            tasks_per_item,
            environment: EnvironmentMode::Upfront,
        }
    }

    /// Compile to a runnable scenario.
    pub fn compile(&self) -> Scenario {
        let mut src = String::new();
        let _ = writeln!(src, "% Example 3.2: simulation of workflow operation");
        let _ = writeln!(src, "base item/1.");
        let _ = writeln!(src, "base done/2.");
        // The workflow each instance runs (tasks do not re-check item/1:
        // simulate consumed the item when it spawned the instance).
        let chain: Vec<String> = (1..=self.tasks_per_item)
            .map(|i| format!("t{i}(W)"))
            .collect();
        let _ = writeln!(src, "workflow(W) <- {}.", chain.join(" * "));
        for i in 1..=self.tasks_per_item {
            let _ = writeln!(src, "t{i}(W) <- ins.done(W, t{i}).");
        }
        // The simulation loop: spawn an instance per item, concurrently.
        let _ = writeln!(
            src,
            "simulate <- item(W) * del.item(W) * (workflow(W) | simulate)."
        );
        let _ = writeln!(src, "simulate <- ().");
        // The environment delivers the items.
        if self.items > 0 {
            let inserts: Vec<String> = (1..=self.items)
                .map(|i| format!("ins.item(w{i})"))
                .collect();
            let _ = writeln!(src, "environment <- {}.", inserts.join(" * "));
        } else {
            let _ = writeln!(src, "environment <- ().");
        }
        let goal = match self.environment {
            EnvironmentMode::Upfront => "?- environment * simulate.",
            EnvironmentMode::Concurrent => "?- simulate | environment.",
        };
        let _ = writeln!(src, "{goal}");
        Scenario::from_source(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_core::{Fragment, FragmentReport, Pred};

    #[test]
    fn upfront_simulation_processes_every_item() {
        let cfg = SimulationConfig::new(4, 2);
        let scenario = cfg.compile();
        let out = scenario.run().unwrap();
        let sol = out.solution().expect("simulation completes");
        // The depth-first engine prefers the spawning rule while items
        // remain, so everything gets processed.
        assert_eq!(
            sol.db.relation(Pred::new("done", 2)).unwrap().len(),
            8,
            "4 items × 2 tasks"
        );
        assert!(sol.db.relation(Pred::new("item", 1)).unwrap().is_empty());
    }

    #[test]
    fn concurrent_environment_also_succeeds() {
        let cfg = SimulationConfig {
            items: 3,
            tasks_per_item: 1,
            environment: EnvironmentMode::Concurrent,
        };
        let out = cfg.compile().run().unwrap();
        assert!(out.is_success());
    }

    #[test]
    fn zero_items_terminates_immediately() {
        let cfg = SimulationConfig::new(0, 3);
        let out = cfg.compile().run().unwrap();
        let sol = out.solution().unwrap();
        assert_eq!(sol.db.total_tuples(), 0);
    }

    #[test]
    fn simulation_is_full_td() {
        // Recursion through | — the RE-complete pattern of §4.
        let scenario = SimulationConfig::new(1, 1).compile();
        let rep = FragmentReport::classify(&scenario.program, &scenario.goal);
        assert_eq!(rep.fragment, Fragment::Full);
        assert!(rep.facts.recursion_through_par);
    }

    #[test]
    fn instances_interleave_in_the_committed_run() {
        // With ≥2 items and ≥2 tasks the committed delta may interleave
        // instances; at minimum, all work appears exactly once.
        let cfg = SimulationConfig::new(3, 3);
        let out = cfg.compile().run().unwrap();
        let delta = out.solution().unwrap().delta.clone();
        let done_ops = delta
            .ops()
            .iter()
            .filter(|op| op.to_string().contains("done"))
            .count();
        assert_eq!(done_ops, 9);
    }
}
