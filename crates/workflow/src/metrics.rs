//! Workflow monitoring: metrics extracted from committed executions.
//!
//! The paper stresses "monitoring, tracking and querying the status of
//! workflow activities" (§3, citing \[36, 42, 26\]). Because TD records
//! everything in the database and every committed execution carries its
//! update log, monitoring is a pure function of the [`Solution`]: these
//! helpers compute task counts, per-item progress, and — for experiment E12
//! — concurrency anomalies in the unisolated agent-claim protocol.

use std::collections::{BTreeMap, HashSet};
use td_core::{Pred, Value};
use td_db::{Delta, DeltaOp};
use td_engine::{MetricsRegistry, Solution};

/// Summary of a committed workflow execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkflowMetrics {
    /// Completion records in `done/2` (item, task).
    pub tasks_completed: usize,
    /// Completion records per work item.
    pub per_item: BTreeMap<String, usize>,
    /// Updates applied on the committed path.
    pub updates: usize,
    /// Elementary steps the search spent (including backtracked work).
    pub search_steps: u64,
    /// Backtracks the search performed.
    pub backtracks: u64,
    /// Subgoal-cache answer replays (0 unless the cache is enabled).
    pub cache_hits: u64,
    /// Subgoal-cache misses that enumerated an answer set.
    pub cache_misses: u64,
}

impl WorkflowMetrics {
    /// Compute from a solution whose program uses the `done/2` convention
    /// of [`crate::spec::WorkflowSpec`].
    pub fn from_solution(sol: &Solution) -> WorkflowMetrics {
        let done = Pred::new("done", 2);
        let mut per_item: BTreeMap<String, usize> = BTreeMap::new();
        let mut tasks_completed = 0;
        if let Some(rel) = sol.db.relation(done) {
            rel.for_each(|t| {
                tasks_completed += 1;
                if let Value::Sym(s) = t.values()[0] {
                    *per_item.entry(s.as_str().to_owned()).or_default() += 1;
                }
            });
        }
        WorkflowMetrics {
            tasks_completed,
            per_item,
            updates: sol.delta.len(),
            search_steps: sol.stats.steps,
            backtracks: sol.stats.backtracks,
            cache_hits: sol.stats.cache_hits,
            cache_misses: sol.stats.cache_misses,
        }
    }

    /// Publish into a shared [`MetricsRegistry`] under `workflow_`-prefixed
    /// counter names, so workflow-level progress aggregates alongside the
    /// engine's own search counters in one registry (and one run report)
    /// instead of through a separate hand-grown counter struct.
    pub fn publish(&self, registry: &MetricsRegistry) {
        registry.add_counter("workflow_tasks_completed", self.tasks_completed as u64);
        registry.add_counter("workflow_updates", self.updates as u64);
        registry.add_counter("workflow_search_steps", self.search_steps);
        registry.add_counter("workflow_backtracks", self.backtracks);
        registry.add_counter("workflow_cache_hits", self.cache_hits);
        registry.add_counter("workflow_cache_misses", self.cache_misses);
        for (item, n) in &self.per_item {
            registry.add_counter(&format!("workflow_done_{item}"), *n as u64);
        }
    }
}

/// Count double-claims of shared agents in a committed update log: a
/// `del.avail(A)` (claim) while `A` is already claimed and not yet released
/// by `ins.avail(A)`. With the isolated claim protocol of
/// [`crate::agents`], this is always 0; without isolation, interleavings
/// that assign one agent to two tasks at once become committable — the
/// anomaly experiment E12 measures.
pub fn double_claims(delta: &Delta) -> usize {
    let avail = Pred::new("avail", 1);
    let mut held: HashSet<Value> = HashSet::new();
    let mut anomalies = 0;
    for op in delta.ops() {
        match op {
            DeltaOp::Del(p, t) if *p == avail => {
                let agent = t.values()[0];
                if !held.insert(agent) {
                    anomalies += 1;
                }
            }
            DeltaOp::Ins(p, t) if *p == avail => {
                held.remove(&t.values()[0]);
            }
            _ => {}
        }
    }
    anomalies
}

/// Maximum number of agents simultaneously claimed over the committed log.
pub fn peak_agents_in_use(delta: &Delta) -> usize {
    let avail = Pred::new("avail", 1);
    let mut held: HashSet<Value> = HashSet::new();
    let mut peak = 0;
    for op in delta.ops() {
        match op {
            DeltaOp::Del(p, t) if *p == avail => {
                held.insert(t.values()[0]);
                peak = peak.max(held.len());
            }
            DeltaOp::Ins(p, t) if *p == avail => {
                held.remove(&t.values()[0]);
            }
            _ => {}
        }
    }
    peak
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agents::AgentScenarioConfig;
    use crate::spec::{Node, WorkflowSpec};
    use td_db::tuple;

    fn delta_of(ops: &[DeltaOp]) -> Delta {
        let mut d = Delta::new();
        for op in ops {
            d.push(op.clone());
        }
        d
    }

    #[test]
    fn metrics_from_example_31() {
        let spec = WorkflowSpec::example_3_1();
        let scenario = spec.compile(&["w1".to_owned(), "w2".to_owned()]);
        let out = scenario.run().unwrap();
        let m = WorkflowMetrics::from_solution(out.solution().unwrap());
        assert_eq!(m.tasks_completed, 10);
        assert_eq!(m.per_item.get("w1"), Some(&5));
        assert_eq!(m.per_item.get("w2"), Some(&5));
        assert_eq!(m.updates, 10);
        assert!(m.search_steps > 0);
    }

    #[test]
    fn publish_lands_in_a_shared_registry() {
        let spec = WorkflowSpec::example_3_1();
        let scenario = spec.compile(&["w1".to_owned()]);
        let out = scenario.run().unwrap();
        let m = WorkflowMetrics::from_solution(out.solution().unwrap());
        let registry = MetricsRegistry::new();
        m.publish(&registry);
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("workflow_tasks_completed"),
            m.tasks_completed as u64
        );
        assert_eq!(snap.counter("workflow_search_steps"), m.search_steps);
        assert_eq!(snap.counter("workflow_done_w1"), 5);
    }

    #[test]
    fn double_claims_detects_overlap() {
        let avail = Pred::new("avail", 1);
        // claim a1; claim a1 again before release → 1 anomaly
        let d = delta_of(&[
            DeltaOp::Del(avail, tuple!("a1")),
            DeltaOp::Del(avail, tuple!("a1")),
            DeltaOp::Ins(avail, tuple!("a1")),
        ]);
        assert_eq!(double_claims(&d), 1);
        // proper claim/release pairs → 0
        let d = delta_of(&[
            DeltaOp::Del(avail, tuple!("a1")),
            DeltaOp::Ins(avail, tuple!("a1")),
            DeltaOp::Del(avail, tuple!("a1")),
            DeltaOp::Ins(avail, tuple!("a1")),
        ]);
        assert_eq!(double_claims(&d), 0);
    }

    #[test]
    fn peak_usage_tracks_concurrent_holds() {
        let avail = Pred::new("avail", 1);
        let d = delta_of(&[
            DeltaOp::Del(avail, tuple!("a1")),
            DeltaOp::Del(avail, tuple!("a2")),
            DeltaOp::Ins(avail, tuple!("a1")),
            DeltaOp::Del(avail, tuple!("a3")),
            DeltaOp::Ins(avail, tuple!("a2")),
            DeltaOp::Ins(avail, tuple!("a3")),
        ]);
        assert_eq!(peak_agents_in_use(&d), 2);
    }

    #[test]
    fn isolated_claims_have_no_anomalies() {
        let cfg = AgentScenarioConfig::universal_pool(
            WorkflowSpec::new("wf", Node::Seq(vec![Node::task("t1"), Node::task("t2")])),
            vec!["w1".into(), "w2".into()],
            2,
        );
        let out = cfg.compile().run().unwrap();
        let delta = out.solution().unwrap().delta.clone();
        assert_eq!(double_claims(&delta), 0);
    }
}
