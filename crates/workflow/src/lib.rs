//! # td-workflow — workflow modeling over Transaction Datalog
//!
//! This crate reproduces §3 of the paper: specifying and simulating
//! production workflows in TD, with examples drawn from a high-throughput
//! genome laboratory. Every generator emits genuine `.td` source (the same
//! rule shapes the paper prints), wrapped in a runnable [`Scenario`].
//!
//! | module | paper artifact |
//! |---|---|
//! | [`spec`] | Example 3.1 — workflow of tasks + sub-workflows |
//! | [`simulate`] | Example 3.2 — unbounded instance spawning, environment process |
//! | [`agents`] | Example 3.3 — shared resources (qualified agents) |
//! | [`network`] | Example 3.4 — cooperating workflows synchronizing via the DB |
//! | [`banking`] | Examples 2.1–2.2 — nested banking transactions |
//! | [`labflow`] | §1/§6 + \[26\] — genome-lab pipeline & iterated protocol |
//! | [`metrics`] | §3 monitoring — metrics & anomaly detection over update logs |
//! | [`manager`] | the operational system: evolving DB + transaction stream |
//! | [`loan`] | §3's other motivating domain: loan applications with branching, review officers, funds ledger |

pub mod agents;
pub mod audit;
pub mod banking;
pub mod dot;
pub mod durable;
pub mod labflow;
pub mod loan;
pub mod manager;
pub mod metrics;
pub mod network;
pub mod scenario;
pub mod simulate;
pub mod spec;
pub mod timeline;

pub use agents::{Agent, AgentScenarioConfig};
pub use audit::{audit, precedence_pairs, Violation};
pub use banking::{serializable_transfers, transfer_goal, Bank};
pub use dot::to_dot;
pub use durable::{run_durable, DurableError, DurableRun};
pub use labflow::{LabFlowConfig, RepeatProtocol};
pub use loan::{Application, LoanConfig};
pub use manager::{Committed, Manager, Submitted};
pub use metrics::{double_claims, peak_agents_in_use, WorkflowMetrics};
pub use network::{Pipeline, Ring, SyncPair};
pub use scenario::Scenario;
pub use simulate::{EnvironmentMode, SimulationConfig};
pub use spec::{Node, WorkflowSpec};
pub use timeline::{events as timeline_events, render as render_timeline};
