//! Auditing committed histories against workflow specifications.
//!
//! The genome center's requirement is "recording and querying the history
//! of experimental steps and the results they produce" (\[25\], quoted in
//! §1). Because every committed TD execution carries its update log, the
//! history is a first-class value — and a workflow specification induces
//! checkable obligations over it:
//!
//! * **precedence**: if the spec serially orders task `a` before task `b`,
//!   then for every work item, `done(W, a)` must be logged before
//!   `done(W, b)`;
//! * **completeness**: a work item that reached the final task must have a
//!   completion record for every task on some path through the spec;
//! * **single execution**: no task runs twice for the same item.
//!
//! [`audit`] checks a committed [`Delta`] (or a [`crate::Manager`] history)
//! against a [`WorkflowSpec`] and reports every violation.

use crate::spec::{Node, WorkflowSpec};
use std::collections::{BTreeMap, BTreeSet};
use td_core::{Pred, Value};
use td_db::{Delta, DeltaOp};

/// One audit violation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Violation {
    /// Task `later` was logged before `earlier` for this item, violating a
    /// serial edge of the spec.
    OrderViolation {
        item: String,
        earlier: String,
        later: String,
    },
    /// The same task completed more than once for the item.
    DuplicateCompletion { item: String, task: String },
    /// The item has some completions but is missing `task` required by the
    /// spec.
    MissingCompletion { item: String, task: String },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::OrderViolation {
                item,
                earlier,
                later,
            } => write!(
                f,
                "item {item}: task `{later}` logged before `{earlier}`, but the spec orders {earlier} * … * {later}"
            ),
            Violation::DuplicateCompletion { item, task } => {
                write!(f, "item {item}: task `{task}` completed more than once")
            }
            Violation::MissingCompletion { item, task } => {
                write!(f, "item {item}: task `{task}` never completed")
            }
        }
    }
}

/// The precedence relation a spec induces: pairs `(a, b)` meaning every
/// execution runs `a` strictly before `b` (for the same work item).
pub fn precedence_pairs(spec: &WorkflowSpec) -> BTreeSet<(String, String)> {
    let mut out = BTreeSet::new();
    collect(&spec.body, &mut out);
    out
}

fn collect(node: &Node, out: &mut BTreeSet<(String, String)>) {
    if let Node::Seq(ns) = node {
        for i in 0..ns.len() {
            for j in i + 1..ns.len() {
                for a in ns[i].tasks() {
                    for b in ns[j].tasks() {
                        // A task name appearing on both sides of a serial
                        // edge would make the constraint unsatisfiable;
                        // skip self-pairs defensively.
                        if a != b {
                            out.insert((a.clone(), b.clone()));
                        }
                    }
                }
            }
        }
    }
    match node {
        Node::Sub(_, body) => collect(body, out),
        Node::Seq(ns) | Node::Par(ns) => {
            for n in ns {
                collect(n, out);
            }
        }
        Node::Task(_) => {}
    }
}

/// Audit a committed update log against a spec. The log is expected to use
/// the `done/2` convention of [`WorkflowSpec::compile`].
pub fn audit(spec: &WorkflowSpec, delta: &Delta) -> Vec<Violation> {
    let done = Pred::new("done", 2);
    // Per item: task -> first log position, plus duplicate detection.
    let mut positions: BTreeMap<String, BTreeMap<String, usize>> = BTreeMap::new();
    let mut violations = Vec::new();

    for (pos, op) in delta.ops().iter().enumerate() {
        let DeltaOp::Ins(p, t) = op else { continue };
        if *p != done {
            continue;
        }
        let (Value::Sym(item), Value::Sym(task)) = (t.values()[0], t.values()[1]) else {
            continue;
        };
        let item = item.as_str().to_owned();
        let task = task.as_str().to_owned();
        let entry = positions.entry(item.clone()).or_default();
        match entry.entry(task.clone()) {
            std::collections::btree_map::Entry::Occupied(_) => {
                violations.push(Violation::DuplicateCompletion { item, task });
            }
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(pos);
            }
        }
    }

    let pairs = precedence_pairs(spec);
    let all_tasks = spec.body.tasks();
    for (item, tasks) in &positions {
        for (a, b) in &pairs {
            if let (Some(pa), Some(pb)) = (tasks.get(a), tasks.get(b)) {
                if pa >= pb {
                    violations.push(Violation::OrderViolation {
                        item: item.clone(),
                        earlier: a.clone(),
                        later: b.clone(),
                    });
                }
            }
        }
        // Completeness: if anything completed, everything must have (the
        // generated workflows have no optional branches).
        for t in &all_tasks {
            if !tasks.contains_key(t) {
                violations.push(Violation::MissingCompletion {
                    item: item.clone(),
                    task: t.clone(),
                });
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_db::tuple;

    fn done_op(item: &str, task: &str) -> DeltaOp {
        DeltaOp::Ins(Pred::new("done", 2), tuple!(item, task))
    }

    fn delta_of(ops: &[DeltaOp]) -> Delta {
        let mut d = Delta::new();
        for op in ops {
            d.push(op.clone());
        }
        d
    }

    #[test]
    fn precedence_pairs_of_example_3_1() {
        let pairs = precedence_pairs(&WorkflowSpec::example_3_1());
        // task1 precedes everything; everything precedes task5.
        assert!(pairs.contains(&("task1".into(), "task2".into())));
        assert!(pairs.contains(&("task1".into(), "task5".into())));
        assert!(pairs.contains(&("task2".into(), "task5".into())));
        assert!(pairs.contains(&("task3".into(), "task4".into())));
        // concurrent tasks are unordered
        assert!(!pairs.contains(&("task2".into(), "task3".into())));
        assert!(!pairs.contains(&("task3".into(), "task2".into())));
    }

    #[test]
    fn committed_runs_pass_the_audit() {
        let spec = WorkflowSpec::example_3_1();
        let scenario = spec.compile(&["w1".to_owned(), "w2".to_owned()]);
        let out = scenario.run().unwrap();
        let delta = out.solution().unwrap().delta.clone();
        assert!(audit(&spec, &delta).is_empty());
    }

    #[test]
    fn order_violation_detected() {
        let spec = WorkflowSpec::example_3_1();
        let d = delta_of(&[
            done_op("w1", "task5"), // final task first!
            done_op("w1", "task1"),
            done_op("w1", "task2"),
            done_op("w1", "task3"),
            done_op("w1", "task4"),
        ]);
        let v = audit(&spec, &d);
        assert!(v.iter().any(|v| matches!(
            v,
            Violation::OrderViolation { later, .. } if later == "task5"
        )));
    }

    #[test]
    fn duplicate_and_missing_detected() {
        let spec = WorkflowSpec::example_3_1();
        let d = delta_of(&[
            done_op("w1", "task1"),
            done_op("w1", "task1"),
            done_op("w1", "task2"),
        ]);
        let v = audit(&spec, &d);
        assert!(v
            .iter()
            .any(|v| matches!(v, Violation::DuplicateCompletion { task, .. } if task == "task1")));
        assert!(v
            .iter()
            .any(|v| matches!(v, Violation::MissingCompletion { task, .. } if task == "task5")));
    }

    #[test]
    fn items_are_audited_independently() {
        let spec = WorkflowSpec::new("w", Node::Seq(vec![Node::task("a"), Node::task("b")]));
        let d = delta_of(&[
            done_op("w1", "a"),
            done_op("w2", "b"), // w2 out of order...
            done_op("w1", "b"),
            done_op("w2", "a"),
        ]);
        let v = audit(&spec, &d);
        assert_eq!(v.len(), 1);
        assert!(matches!(&v[0], Violation::OrderViolation { item, .. } if item == "w2"));
    }

    #[test]
    fn violations_render_readably() {
        let v = Violation::OrderViolation {
            item: "w1".into(),
            earlier: "a".into(),
            later: "b".into(),
        };
        assert!(v.to_string().contains("`b` logged before `a`"));
    }
}
