//! LabFlow: the genome-laboratory workload (the paper's motivating
//! application, §1 and §3; LabFlow-1 benchmark \[26, 24, 25\]).
//!
//! The Whitehead/MIT genome center organizes "tens of millions of
//! experiments … into a network of factory-like production lines" where
//! "experimental results are accumulated in the database, and queried by
//! analysis programs, but never deleted or altered" (\[25, 73\], quoted in
//! §6). Two generators model that workload:
//!
//! * [`LabFlowConfig`] — a factory pipeline: `samples` DNA samples flow
//!   through `stages` experiment stations; each stage *appends* a result
//!   tuple (insert-only history) and marks progress. Used by the
//!   throughput benchmark (E10).
//! * [`RepeatProtocol`] — the iterated protocol of \[26\]: "an experimental
//!   protocol may be repeated until a conclusive result is achieved" —
//!   a tail-recursive loop that retries an experiment until its quality
//!   passes a threshold. This is exactly the *sequential tail recursion*
//!   that fully bounded TD permits (§5).

use crate::scenario::Scenario;
use std::fmt::Write as _;

/// A factory-line pipeline of experiment stages over many samples.
#[derive(Clone, Copy, Debug)]
pub struct LabFlowConfig {
    /// Number of DNA samples (work items).
    pub samples: usize,
    /// Number of pipeline stages each sample passes through.
    pub stages: usize,
}

impl LabFlowConfig {
    pub fn new(samples: usize, stages: usize) -> LabFlowConfig {
        LabFlowConfig { samples, stages }
    }

    /// Compile to a runnable scenario. Stage `i` moves a sample from
    /// station `i-1` to station `i` and appends `result(W, stage_i)`;
    /// results are never deleted (insert-only history). All samples run
    /// concurrently.
    pub fn compile(&self) -> Scenario {
        let mut src = String::new();
        let _ = writeln!(
            src,
            "% LabFlow-style genome pipeline: {} samples x {} stages",
            self.samples, self.stages
        );
        let _ = writeln!(src, "base at/2.");
        let _ = writeln!(src, "base result/2.");
        for i in 1..=self.samples {
            let _ = writeln!(src, "init at(s{i}, 0).");
        }
        for stage in 1..=self.stages {
            let prev = stage - 1;
            let _ = writeln!(
                src,
                "stage{stage}(W) <- at(W, {prev}) * del.at(W, {prev}) \
                 * ins.result(W, {stage}) * ins.at(W, {stage})."
            );
        }
        let chain: Vec<String> = (1..=self.stages).map(|i| format!("stage{i}(W)")).collect();
        if self.stages == 0 {
            let _ = writeln!(src, "process(W) <- at(W, 0).");
        } else {
            let _ = writeln!(src, "process(W) <- {}.", chain.join(" * "));
        }
        let instances: Vec<String> = (1..=self.samples)
            .map(|i| format!("process(s{i})"))
            .collect();
        if self.samples == 0 {
            let _ = writeln!(src, "?- ().");
        } else {
            let _ = writeln!(src, "?- {}.", instances.join(" | "));
        }
        Scenario::from_source(src)
    }
}

/// The iterated protocol of \[26\]: repeat an experiment until conclusive.
#[derive(Clone, Copy, Debug)]
pub struct RepeatProtocol {
    /// Number of samples.
    pub samples: usize,
    /// Attempts needed before a sample's result is conclusive.
    pub attempts_needed: i64,
}

impl RepeatProtocol {
    pub fn new(samples: usize, attempts_needed: i64) -> RepeatProtocol {
        RepeatProtocol {
            samples,
            attempts_needed,
        }
    }

    /// Compile: each sample starts at quality 0; `protocol(W)` re-runs the
    /// experiment (appending to the insert-only `result` history) until
    /// quality reaches the threshold, then declares the sample mapped.
    pub fn compile(&self) -> Scenario {
        let mut src = String::new();
        let _ = writeln!(src, "% iterated protocol ([26]): repeat until conclusive");
        let _ = writeln!(src, "base quality/2.");
        let _ = writeln!(src, "base result/2.");
        let _ = writeln!(src, "base mapped/1.");
        for i in 1..=self.samples {
            let _ = writeln!(src, "init quality(s{i}, 0).");
        }
        let k = self.attempts_needed;
        let _ = writeln!(
            src,
            "protocol(W) <- quality(W, Q) * Q >= {k} * ins.mapped(W)."
        );
        let _ = writeln!(
            src,
            "protocol(W) <- quality(W, Q) * Q < {k} * del.quality(W, Q) \
             * Q2 is Q + 1 * ins.quality(W, Q2) * ins.result(W, Q2) * protocol(W)."
        );
        let instances: Vec<String> = (1..=self.samples)
            .map(|i| format!("protocol(s{i})"))
            .collect();
        if self.samples == 0 {
            let _ = writeln!(src, "?- ().");
        } else {
            let _ = writeln!(src, "?- {}.", instances.join(" | "));
        }
        Scenario::from_source(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_core::{Fragment, FragmentReport, Pred};
    use td_db::tuple;

    #[test]
    fn pipeline_moves_all_samples_to_the_end() {
        let scenario = LabFlowConfig::new(3, 4).compile();
        let out = scenario.run().unwrap();
        let sol = out.solution().expect("pipeline completes");
        let at = Pred::new("at", 2);
        for i in 1..=3 {
            assert!(sol.db.contains(at, &tuple!(format!("s{i}").as_str(), 4)));
        }
        // Insert-only history: one result per (sample, stage).
        assert_eq!(sol.db.relation(Pred::new("result", 2)).unwrap().len(), 12);
    }

    #[test]
    fn history_is_append_only() {
        let scenario = LabFlowConfig::new(2, 3).compile();
        let out = scenario.run().unwrap();
        let delta = out.solution().unwrap().delta.clone();
        assert!(
            delta
                .ops()
                .iter()
                .all(|op| !op.to_string().starts_with("del.result")),
            "results are never deleted"
        );
    }

    #[test]
    fn repeat_protocol_retries_until_threshold() {
        let scenario = RepeatProtocol::new(2, 3).compile();
        let out = scenario.run().unwrap();
        let sol = out.solution().expect("protocol concludes");
        assert_eq!(sol.db.relation(Pred::new("mapped", 1)).unwrap().len(), 2);
        // 3 attempts per sample recorded in the history.
        assert_eq!(sol.db.relation(Pred::new("result", 2)).unwrap().len(), 6);
        assert!(sol.db.contains(Pred::new("quality", 2), &tuple!("s1", 3)));
    }

    #[test]
    fn repeat_protocol_is_fully_bounded_td() {
        // Tail recursion + static concurrency = the §5 fragment.
        let scenario = RepeatProtocol::new(2, 2).compile();
        let rep = FragmentReport::classify(&scenario.program, &scenario.goal);
        assert_eq!(rep.fragment, Fragment::FullyBounded);
    }

    #[test]
    fn pipeline_is_nonrecursive_td() {
        let scenario = LabFlowConfig::new(2, 2).compile();
        let rep = FragmentReport::classify(&scenario.program, &scenario.goal);
        assert_eq!(rep.fragment, Fragment::Nonrecursive);
    }

    #[test]
    fn zero_threshold_maps_immediately() {
        let scenario = RepeatProtocol::new(1, 0).compile();
        let out = scenario.run().unwrap();
        let sol = out.solution().unwrap();
        assert!(sol.db.contains(Pred::new("mapped", 1), &tuple!("s1")));
        assert!(sol.db.relation(Pred::new("result", 2)).unwrap().is_empty());
    }

    #[test]
    fn empty_configs_succeed() {
        assert!(LabFlowConfig::new(0, 3)
            .compile()
            .run()
            .unwrap()
            .is_success());
        assert!(LabFlowConfig::new(3, 0)
            .compile()
            .run()
            .unwrap()
            .is_success());
        assert!(RepeatProtocol::new(0, 2)
            .compile()
            .run()
            .unwrap()
            .is_success());
    }
}

#[cfg(test)]
mod scale_tests {
    use super::*;
    use td_core::Pred;
    use td_engine::{EngineConfig, Strategy};

    #[test]
    fn fifty_samples_under_round_robin() {
        // Scale check: 50 concurrent instances × 4 stages complete under the
        // fair scheduler in bounded work (the workload is confluent).
        let scenario = LabFlowConfig::new(50, 4).compile();
        let out = scenario
            .run_with(
                EngineConfig::default()
                    .with_strategy(Strategy::RoundRobin)
                    .with_max_steps(2_000_000),
            )
            .unwrap();
        let sol = out.solution().expect("all 50 complete");
        assert_eq!(sol.db.relation(Pred::new("result", 2)).unwrap().len(), 200);
        assert!(sol.stats.peak_processes >= 50);
    }

    #[test]
    fn fifty_samples_under_exhaustive_with_memo() {
        let scenario = LabFlowConfig::new(50, 2).compile();
        let out = scenario
            .run_with(EngineConfig::default().with_max_steps(2_000_000))
            .unwrap();
        assert!(out.is_success());
    }
}
