//! Banking transactions: the paper's Examples 2.1–2.2.
//!
//! Example 2.2 is "a canonical example of nested transactions, one that
//! brings out several limitations of the classical (or 'flat') transaction
//! model": a transfer composed of a withdrawal and a deposit, where the
//! failure of one implies the failure of the other *even if the other has
//! already committed locally*, and where serializability is needed *within*
//! transactions, not just between them.
//!
//! ```text
//! withdraw(Amt, Acct) <- balance(Acct, Bal) * Bal >= Amt
//!                        * del.balance(Acct, Bal)
//!                        * NB is Bal - Amt * ins.balance(Acct, NB).
//! deposit(Amt, Acct)  <- balance(Acct, Bal) * del.balance(Acct, Bal)
//!                        * NB is Bal + Amt * ins.balance(Acct, NB).
//! transfer(Amt, A, B) <- withdraw(Amt, A) * deposit(Amt, B).
//! ```
//!
//! The all-or-nothing semantics of TD gives relative commit and partial
//! rollback for free: if `deposit` fails, the already-executed `withdraw`
//! is rolled back with it. Wrapping concurrent transfers in `iso { … }`
//! executes them serializably (§2: `⊙t₁ | ⊙t₂ | … | ⊙tₙ`).

use crate::scenario::Scenario;
use std::fmt::Write as _;
use td_core::{Goal, Pred, Value};
use td_db::{Database, Tuple};

/// A bank with named accounts and integer balances.
#[derive(Clone, Debug)]
pub struct Bank {
    pub accounts: Vec<(String, i64)>,
}

impl Bank {
    pub fn new(accounts: &[(&str, i64)]) -> Bank {
        Bank {
            accounts: accounts
                .iter()
                .map(|(n, b)| ((*n).to_owned(), *b))
                .collect(),
        }
    }

    /// The banking program with this bank's initial balances and a trivial
    /// goal (callers typically substitute their own via [`transfer_goal`]
    /// and friends).
    pub fn scenario(&self) -> Scenario {
        let mut src = String::new();
        let _ = writeln!(src, "% Examples 2.1-2.2: banking with nested transactions");
        let _ = writeln!(src, "base balance/2.");
        for (acct, bal) in &self.accounts {
            let _ = writeln!(src, "init balance({acct}, {bal}).");
        }
        let _ = writeln!(
            src,
            "withdraw(Amt, Acct) <- balance(Acct, Bal) * Bal >= Amt \
             * del.balance(Acct, Bal) * NB is Bal - Amt * ins.balance(Acct, NB)."
        );
        let _ = writeln!(
            src,
            "deposit(Amt, Acct) <- balance(Acct, Bal) \
             * del.balance(Acct, Bal) * NB is Bal + Amt * ins.balance(Acct, NB)."
        );
        let _ = writeln!(
            src,
            "transfer(Amt, From, To) <- withdraw(Amt, From) * deposit(Amt, To)."
        );
        let _ = writeln!(src, "?- ().");
        Scenario::from_source(src)
    }

    /// The balance of `acct` in `db`, if present.
    pub fn balance_in(db: &Database, acct: &str) -> Option<i64> {
        let rel = db.relation(Pred::new("balance", 2))?;
        let matches = rel.select(&[Some(Value::sym(acct)), None]);
        matches.first().and_then(|t: &Tuple| t.values()[1].as_int())
    }
}

/// Goal `transfer(amt, from, to)`.
pub fn transfer_goal(amt: i64, from: &str, to: &str) -> Goal {
    Goal::atom(
        "transfer",
        vec![
            td_core::Term::int(amt),
            td_core::Term::sym(from),
            td_core::Term::sym(to),
        ],
    )
}

/// Goal executing each transfer serializably: `iso{t₁} | iso{t₂} | …`.
pub fn serializable_transfers(transfers: &[(i64, &str, &str)]) -> Goal {
    Goal::par(
        transfers
            .iter()
            .map(|(amt, from, to)| Goal::iso(transfer_goal(*amt, from, to)))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank() -> (Scenario, Bank) {
        let b = Bank::new(&[("acct1", 100), ("acct2", 50)]);
        (b.scenario(), b)
    }

    #[test]
    fn successful_transfer_moves_money() {
        let (scenario, _) = bank();
        let engine = td_engine::Engine::new(scenario.program.clone());
        let out = engine
            .solve(&transfer_goal(30, "acct1", "acct2"), &scenario.db)
            .unwrap();
        let sol = out.solution().expect("transfer commits");
        assert_eq!(Bank::balance_in(&sol.db, "acct1"), Some(70));
        assert_eq!(Bank::balance_in(&sol.db, "acct2"), Some(80));
    }

    #[test]
    fn insufficient_funds_fails_atomically() {
        let (scenario, _) = bank();
        let engine = td_engine::Engine::new(scenario.program.clone());
        let out = engine
            .solve(&transfer_goal(500, "acct1", "acct2"), &scenario.db)
            .unwrap();
        assert!(!out.is_success(), "Bal >= Amt precondition fails");
    }

    #[test]
    fn failed_deposit_rolls_back_committed_withdraw() {
        // Deposit to a nonexistent account fails AFTER the withdraw already
        // executed: relative commit demands the withdraw be undone — the
        // limitation of flat transactions that Example 2.2 showcases.
        let (scenario, _) = bank();
        let engine = td_engine::Engine::new(scenario.program.clone());
        let out = engine
            .solve(&transfer_goal(30, "acct1", "ghost"), &scenario.db)
            .unwrap();
        assert!(!out.is_success());
        // The input database value is untouched; the committed outcome is
        // "nothing happened".
        assert_eq!(Bank::balance_in(&scenario.db, "acct1"), Some(100));
    }

    #[test]
    fn serializable_concurrent_transfers_preserve_total() {
        let (scenario, _) = bank();
        let goal = serializable_transfers(&[
            (10, "acct1", "acct2"),
            (20, "acct2", "acct1"),
            (5, "acct1", "acct2"),
        ]);
        let engine = td_engine::Engine::new(scenario.program.clone());
        let out = engine.solve(&goal, &scenario.db).unwrap();
        let sol = out.solution().expect("serializable execution exists");
        let a = Bank::balance_in(&sol.db, "acct1").unwrap();
        let b = Bank::balance_in(&sol.db, "acct2").unwrap();
        assert_eq!(a + b, 150, "money is conserved");
        assert_eq!(a, 105);
        assert_eq!(b, 45);
    }

    #[test]
    fn unisolated_transfers_can_interleave_but_still_conserve_money_here() {
        // Without iso the two transfers may interleave mid-flight. With this
        // rule set an interleaving can lose one balance tuple mid-update,
        // but any committed execution the engine finds is still a valid
        // path; we assert it finds one.
        let (scenario, _) = bank();
        let goal = Goal::par(vec![
            transfer_goal(10, "acct1", "acct2"),
            transfer_goal(20, "acct2", "acct1"),
        ]);
        let engine = td_engine::Engine::new(scenario.program.clone());
        let out = engine.solve(&goal, &scenario.db).unwrap();
        assert!(out.is_success());
    }

    #[test]
    fn transfer_to_self_requires_funds_but_is_neutral() {
        let (scenario, _) = bank();
        let engine = td_engine::Engine::new(scenario.program.clone());
        let out = engine
            .solve(&transfer_goal(40, "acct1", "acct1"), &scenario.db)
            .unwrap();
        let sol = out.solution().expect("self-transfer commits");
        assert_eq!(Bank::balance_in(&sol.db, "acct1"), Some(100));
    }

    #[test]
    fn balance_in_reads_the_relation() {
        let (scenario, _) = bank();
        assert_eq!(Bank::balance_in(&scenario.db, "acct1"), Some(100));
        assert_eq!(Bank::balance_in(&scenario.db, "nope"), None);
    }
}

#[cfg(test)]
mod serializability_properties {
    use super::*;
    use proptest::prelude::*;
    use td_engine::{Engine, EngineConfig, Strategy};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn isolated_transfers_conserve_money_under_any_seed(
            transfers in proptest::collection::vec((1i64..40, 0usize..3, 0usize..3), 1..5),
            seed in 0u64..8,
        ) {
            let bank = Bank::new(&[("a0", 100), ("a1", 100), ("a2", 100)]);
            let scenario = bank.scenario();
            let names = ["a0", "a1", "a2"];
            let list: Vec<(i64, &str, &str)> = transfers
                .iter()
                .map(|(amt, f, t)| (*amt, names[*f], names[*t]))
                .collect();
            let goal = serializable_transfers(&list);
            let engine = Engine::with_config(
                scenario.program.clone(),
                EngineConfig::default()
                    .with_strategy(Strategy::ExhaustiveRandom(seed))
                    .with_max_steps(500_000),
            );
            let out = engine.solve(&goal, &scenario.db).expect("within budget");
            if let Some(sol) = out.solution() {
                let total: i64 = names
                    .iter()
                    .map(|n| Bank::balance_in(&sol.db, n).unwrap())
                    .sum();
                prop_assert_eq!(total, 300, "money conserved under seed {}", seed);
                for n in names {
                    prop_assert!(Bank::balance_in(&sol.db, n).unwrap() >= 0);
                }
            }
            // A failure is legitimate (insufficient funds for some order);
            // what must never happen is a committed state violating the
            // invariants above.
        }
    }
}
