//! A runnable workflow scenario: program + initial database + goal.

use td_core::{Goal, Program};
use td_db::Database;
use td_engine::{load_init, Engine, EngineConfig, EngineError, Outcome};
use td_parser::parse_program;

/// A self-contained, runnable workflow scenario. Every generator in this
/// crate produces one of these; the `source` field is genuine `.td` text
/// (parseable by `td-parser`, printable for inspection), mirroring how the
/// paper presents its examples as rule text.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The TD program.
    pub program: Program,
    /// Initial database (schema declared, `init` facts loaded).
    pub db: Database,
    /// The goal to execute.
    pub goal: Goal,
    /// The `.td` source the scenario was built from.
    pub source: String,
}

impl Scenario {
    /// Build a scenario from `.td` source. The source must contain exactly
    /// the statements of the scenario and at least one `?-` goal (the first
    /// is used).
    ///
    /// # Panics
    /// Panics if the source does not parse or has no goal — generator bugs,
    /// not user errors.
    pub fn from_source(source: String) -> Scenario {
        let parsed = match parse_program(&source) {
            Ok(p) => p,
            Err(e) => panic!(
                "generated scenario does not parse:\n{}\n--- source ---\n{source}",
                e.render(&source)
            ),
        };
        let db = Database::with_schema_of(&parsed.program);
        let db = load_init(&db, &parsed.init).expect("generated init facts load");
        let goal = parsed
            .goals
            .first()
            .expect("generated scenario declares a goal")
            .goal
            .clone();
        Scenario {
            program: parsed.program,
            db,
            goal,
            source,
        }
    }

    /// Run with the default engine configuration.
    pub fn run(&self) -> Result<Outcome, EngineError> {
        self.run_with(EngineConfig::default())
    }

    /// Run with an explicit configuration.
    pub fn run_with(&self, config: EngineConfig) -> Result<Outcome, EngineError> {
        Engine::with_config(self.program.clone(), config).solve(&self.goal, &self.db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_source_builds_and_runs() {
        let s = Scenario::from_source("base t/1. init t(1). ?- t(X) * del.t(X).".to_owned());
        let out = s.run().unwrap();
        assert!(out.is_success());
        assert_eq!(out.solution().unwrap().db.total_tuples(), 0);
    }

    #[test]
    #[should_panic(expected = "does not parse")]
    fn bad_source_panics_with_rendered_error() {
        Scenario::from_source("base t/1. ?- t(".to_owned());
    }
}
