//! Networks of cooperating workflows (Example 3.4).
//!
//! "Typically, one workflow needs information produced by another workflow,
//! and may have to wait for this information to become available before it
//! can continue. This is the case … in the workflow described in \[26\], in
//! which the work items are DNA samples, and the purpose of the workflow is
//! to construct a physical genome map" — that workflow "consists of two
//! concurrent sub-workflows that synchronize themselves at several points"
//! (§3, Example 3.4).
//!
//! Two generators:
//!
//! * [`SyncPair`] — the genome-map shape: two concurrent workflows that
//!   rendezvous at `k` synchronization points through the database;
//! * [`Pipeline`] — a producer workflow feeding a consumer workflow one
//!   work item at a time through an `info/1` relation.

use crate::scenario::Scenario;
use std::fmt::Write as _;

/// Two cooperating workflows synchronizing at `sync_points` barriers.
///
/// Workflow A performs a step and publishes `sync(i)`; workflow B waits for
/// `sync(i)` before performing its own step — for each stage `i`.
#[derive(Clone, Copy, Debug)]
pub struct SyncPair {
    pub sync_points: usize,
}

impl SyncPair {
    pub fn new(sync_points: usize) -> SyncPair {
        SyncPair { sync_points }
    }

    pub fn compile(&self) -> Scenario {
        let mut src = String::new();
        let _ = writeln!(
            src,
            "% Example 3.4: two workflows, {} sync points",
            self.sync_points
        );
        let _ = writeln!(src, "base sync/1.");
        let _ = writeln!(src, "base adone/1.");
        let _ = writeln!(src, "base bdone/1.");
        let a_steps: Vec<String> = (1..=self.sync_points)
            .map(|i| format!("ins.adone({i}) * ins.sync({i})"))
            .collect();
        let b_steps: Vec<String> = (1..=self.sync_points)
            .map(|i| format!("sync({i}) * ins.bdone({i})"))
            .collect();
        if self.sync_points == 0 {
            let _ = writeln!(src, "wf_a <- ().");
            let _ = writeln!(src, "wf_b <- ().");
        } else {
            let _ = writeln!(src, "wf_a <- {}.", a_steps.join(" * "));
            let _ = writeln!(src, "wf_b <- {}.", b_steps.join(" * "));
        }
        let _ = writeln!(src, "?- wf_a | wf_b.");
        Scenario::from_source(src)
    }
}

/// A producer workflow feeding a consumer through the database, one work
/// item at a time.
#[derive(Clone, Debug)]
pub struct Pipeline {
    pub items: Vec<String>,
}

impl Pipeline {
    pub fn new(n: usize) -> Pipeline {
        Pipeline {
            items: (1..=n).map(|i| format!("s{i}")).collect(),
        }
    }

    pub fn compile(&self) -> Scenario {
        let mut src = String::new();
        let _ = writeln!(src, "% producer/consumer workflow network");
        let _ = writeln!(src, "base item/1.");
        let _ = writeln!(src, "base info/1.");
        let _ = writeln!(src, "base used/1.");
        for w in &self.items {
            let _ = writeln!(src, "init item({w}).");
        }
        let _ = writeln!(
            src,
            "producer <- item(W) * del.item(W) * ins.info(W) * producer."
        );
        let _ = writeln!(src, "producer <- ().");
        let _ = writeln!(
            src,
            "consumer <- info(W) * del.info(W) * ins.used(W) * consumer."
        );
        let _ = writeln!(src, "consumer <- ().");
        // The consumer can only finish its work if the producer has
        // published; success requires all items used.
        let used: Vec<String> = self.items.iter().map(|w| format!("used({w})")).collect();
        if self.items.is_empty() {
            let _ = writeln!(src, "all_used <- ().");
        } else {
            let _ = writeln!(src, "all_used <- {}.", used.join(" * "));
        }
        let _ = writeln!(src, "?- (producer | consumer) * all_used.");
        Scenario::from_source(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_core::Pred;

    #[test]
    fn sync_pair_completes_and_orders_barriers() {
        let scenario = SyncPair::new(3).compile();
        let out = scenario.run().unwrap();
        let sol = out.solution().expect("both workflows complete");
        assert_eq!(sol.db.relation(Pred::new("adone", 1)).unwrap().len(), 3);
        assert_eq!(sol.db.relation(Pred::new("bdone", 1)).unwrap().len(), 3);
        // In the committed run, b's step i must come after a's sync(i).
        let delta = out.solution().unwrap().delta.clone();
        let pos = |needle: &str| {
            delta
                .ops()
                .iter()
                .position(|op| op.to_string() == needle)
                .unwrap_or(usize::MAX)
        };
        for i in 1..=3 {
            assert!(
                pos(&format!("ins.sync({i})")) < pos(&format!("ins.bdone({i})")),
                "sync({i}) must precede bdone({i})"
            );
        }
    }

    #[test]
    fn zero_sync_points_trivially_succeeds() {
        assert!(SyncPair::new(0).compile().run().unwrap().is_success());
    }

    #[test]
    fn pipeline_moves_every_item_through() {
        let scenario = Pipeline::new(4).compile();
        let out = scenario.run().unwrap();
        let sol = out.solution().expect("pipeline drains");
        assert_eq!(sol.db.relation(Pred::new("used", 1)).unwrap().len(), 4);
        assert!(sol.db.relation(Pred::new("item", 1)).unwrap().is_empty());
        assert!(sol.db.relation(Pred::new("info", 1)).unwrap().is_empty());
    }

    #[test]
    fn pipeline_consumption_follows_production_per_item() {
        let scenario = Pipeline::new(2).compile();
        let out = scenario.run().unwrap();
        let delta = out.solution().unwrap().delta.clone();
        let pos = |needle: &str| {
            delta
                .ops()
                .iter()
                .position(|op| op.to_string() == needle)
                .unwrap_or(usize::MAX)
        };
        for w in ["s1", "s2"] {
            assert!(pos(&format!("ins.info({w})")) < pos(&format!("ins.used({w})")));
        }
    }

    #[test]
    fn empty_pipeline_succeeds() {
        assert!(Pipeline::new(0).compile().run().unwrap().is_success());
    }
}

/// A grid of `n` workflows in a ring, each producing the token its right
/// neighbour consumes — a larger cooperating-network stress shape
/// generalizing Example 3.4 beyond a pair.
#[derive(Clone, Copy, Debug)]
pub struct Ring {
    pub members: usize,
}

impl Ring {
    pub fn new(members: usize) -> Ring {
        Ring { members }
    }

    /// Member 1 starts with its token available; each member waits for its
    /// own token, does its work, and hands a token to the next; success =
    /// the token returns to the start.
    pub fn compile(&self) -> Scenario {
        assert!(self.members >= 2, "a ring needs at least two members");
        let n = self.members;
        let mut src = String::new();
        let _ = writeln!(
            src,
            "% ring of {n} cooperating workflows (Example 3.4 generalized)"
        );
        let _ = writeln!(src, "base token/1.");
        let _ = writeln!(src, "base worked/1.");
        let _ = writeln!(src, "init token(1).");
        for i in 1..=n {
            let next = if i == n { 1 } else { i + 1 };
            let _ = writeln!(
                src,
                "m{i} <- token({i}) * del.token({i}) * ins.worked({i}) * ins.token({next})."
            );
        }
        let members: Vec<String> = (1..=n).map(|i| format!("m{i}")).collect();
        let _ = writeln!(src, "?- ({}) * token(1).", members.join(" | "));
        Scenario::from_source(src)
    }
}

#[cfg(test)]
mod ring_tests {
    use super::*;
    use td_core::Pred;

    #[test]
    fn token_travels_the_whole_ring() {
        for n in [2usize, 3, 6] {
            let out = Ring::new(n).compile().run().unwrap();
            let sol = out
                .solution()
                .unwrap_or_else(|| panic!("ring {n} completes"));
            assert_eq!(
                sol.db.relation(Pred::new("worked", 1)).unwrap().len(),
                n,
                "every member worked"
            );
            // Exactly the start token remains.
            assert_eq!(sol.db.relation(Pred::new("token", 1)).unwrap().len(), 1);
        }
    }

    #[test]
    fn work_order_follows_the_ring() {
        let out = Ring::new(4).compile().run().unwrap();
        let delta = out.solution().unwrap().delta.clone();
        let pos = |needle: &str| {
            delta
                .ops()
                .iter()
                .position(|op| op.to_string() == needle)
                .unwrap()
        };
        for i in 1..4 {
            assert!(
                pos(&format!("ins.worked({i})")) < pos(&format!("ins.worked({})", i + 1)),
                "member {i} before member {}",
                i + 1
            );
        }
    }
}
