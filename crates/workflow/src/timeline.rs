//! Timeline rendering of committed executions.
//!
//! Turns a committed update log into a step-by-step text timeline grouped
//! by work item — the human-readable face of "monitoring, tracking and
//! querying the status of workflow activities" (§3). Each `done/2` (or
//! `did/3`) record becomes a lane event; lanes are work items; columns are
//! commit order.
//!
//! ```text
//! step  1  w1 ▶ task1
//! step  2  w2 ▶ task1
//! step  3  w1 ▶ task3
//! ...
//! lane w1: task1 ── task3 ── task2 ── task4 ── task5
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use td_core::{Pred, Value};
use td_db::{Delta, DeltaOp};

/// One event on the timeline.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Event {
    /// Position in the committed log.
    pub step: usize,
    /// The work item (first argument of the completion record).
    pub item: String,
    /// The task (second argument).
    pub task: String,
    /// The executing agent, when the record is `did/3`.
    pub agent: Option<String>,
}

/// Extract the completion events (`done/2` and `did/3` inserts) from a log.
pub fn events(delta: &Delta) -> Vec<Event> {
    let done = Pred::new("done", 2);
    let did = Pred::new("did", 3);
    let mut out = Vec::new();
    for (step, op) in delta.ops().iter().enumerate() {
        let DeltaOp::Ins(p, t) = op else { continue };
        let sym = |v: Value| match v {
            Value::Sym(s) => Some(s.as_str().to_owned()),
            Value::Int(i) => Some(i.to_string()),
        };
        if *p == done {
            if let (Some(item), Some(task)) = (sym(t.values()[0]), sym(t.values()[1])) {
                out.push(Event {
                    step,
                    item,
                    task,
                    agent: None,
                });
            }
        } else if *p == did {
            if let (Some(item), Some(task), Some(agent)) =
                (sym(t.values()[0]), sym(t.values()[1]), sym(t.values()[2]))
            {
                out.push(Event {
                    step,
                    item,
                    task,
                    agent: Some(agent),
                });
            }
        }
    }
    out
}

/// Render the full timeline: the event stream followed by per-item lanes.
pub fn render(delta: &Delta) -> String {
    let evs = events(delta);
    let mut out = String::new();
    for e in &evs {
        let _ = write!(out, "step {:>3}  {} ▶ {}", e.step + 1, e.item, e.task);
        if let Some(a) = &e.agent {
            let _ = write!(out, "  [{a}]");
        }
        out.push('\n');
    }
    let mut lanes: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for e in &evs {
        lanes
            .entry(e.item.clone())
            .or_default()
            .push(e.task.clone());
    }
    if !lanes.is_empty() {
        out.push('\n');
    }
    for (item, tasks) in lanes {
        let _ = writeln!(out, "lane {item}: {}", tasks.join(" ── "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkflowSpec;

    #[test]
    fn renders_example_3_1_lanes() {
        let scenario = WorkflowSpec::example_3_1().compile(&["w1".to_owned(), "w2".to_owned()]);
        let out = scenario.run().unwrap();
        let delta = out.solution().unwrap().delta.clone();
        let rendered = render(&delta);
        assert!(rendered.contains("lane w1:"));
        assert!(rendered.contains("lane w2:"));
        assert!(rendered.contains("w1 ▶ task1"));
        // Each lane lists all five tasks.
        for line in rendered.lines().filter(|l| l.starts_with("lane")) {
            assert_eq!(line.matches("task").count(), 5, "{line}");
        }
    }

    #[test]
    fn did_records_show_the_agent() {
        let cfg = crate::agents::AgentScenarioConfig::universal_pool(
            WorkflowSpec::new(
                "wf",
                crate::spec::Node::Seq(vec![crate::spec::Node::task("t1")]),
            ),
            vec!["w1".into()],
            1,
        );
        let out = cfg.compile().run().unwrap();
        let rendered = render(&out.solution().unwrap().delta);
        assert!(rendered.contains("[agent1]"), "{rendered}");
    }

    #[test]
    fn events_preserve_commit_order() {
        let scenario = WorkflowSpec::example_3_1().compile(&["w1".to_owned()]);
        let out = scenario.run().unwrap();
        let evs = events(&out.solution().unwrap().delta);
        assert_eq!(evs.len(), 5);
        assert!(evs.windows(2).all(|w| w[0].step < w[1].step));
        assert_eq!(evs[0].task, "task1");
        assert_eq!(evs[4].task, "task5");
    }

    #[test]
    fn empty_delta_renders_empty() {
        assert!(render(&Delta::new()).is_empty());
    }
}
