//! Workflow specification (Example 3.1).
//!
//! The paper's Example 3.1 defines a workflow as rules over tasks and
//! sub-workflows:
//!
//! ```text
//! workflow(W) <- task1(W) * (task2(W) | subflow(W)) * task5(W).
//! subflow(W)  <- task3(W) * task4(W).
//! task_i(W)   <- ... * ins.done(W, task_i).
//! ```
//!
//! [`Node`] is the control-flow algebra (tasks composed serially and
//! concurrently, with named sub-workflows); [`WorkflowSpec::compile`] emits
//! exactly that rule shape. Each task records its completion in the
//! `done/2` relation, which is how later tasks, monitors and the test suite
//! observe progress — "monitoring, tracking and querying the status of
//! workflow activities" (§3).

use crate::scenario::Scenario;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Control flow of a workflow over named tasks.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Node {
    /// An atomic task, named by a lowercase identifier.
    Task(String),
    /// A named sub-workflow with its own body (compiled to its own rule,
    /// like `subflow` in Example 3.1).
    Sub(String, Box<Node>),
    /// Serial composition.
    Seq(Vec<Node>),
    /// Concurrent composition.
    Par(Vec<Node>),
}

impl Node {
    /// Leaf task helper.
    pub fn task(name: &str) -> Node {
        Node::Task(name.to_owned())
    }

    /// Named sub-workflow helper.
    pub fn sub(name: &str, body: Node) -> Node {
        Node::Sub(name.to_owned(), Box::new(body))
    }

    /// All task names in the node (sorted, deduplicated).
    pub fn tasks(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_tasks(&mut out);
        out
    }

    fn collect_tasks(&self, out: &mut BTreeSet<String>) {
        match self {
            Node::Task(t) => {
                out.insert(t.clone());
            }
            Node::Sub(_, body) => body.collect_tasks(out),
            Node::Seq(ns) | Node::Par(ns) => {
                for n in ns {
                    n.collect_tasks(out);
                }
            }
        }
    }

    /// Render as a TD goal over `W`, collecting sub-workflow rules.
    pub(crate) fn render(&self, subs: &mut Vec<(String, String)>) -> String {
        match self {
            Node::Task(t) => format!("{t}(W)"),
            Node::Sub(name, body) => {
                let rendered = body.render(subs);
                subs.push((name.clone(), rendered));
                format!("{name}(W)")
            }
            Node::Seq(ns) => {
                let parts: Vec<String> = ns.iter().map(|n| n.render_paren(subs, true)).collect();
                parts.join(" * ")
            }
            Node::Par(ns) => {
                let parts: Vec<String> = ns.iter().map(|n| n.render_paren(subs, false)).collect();
                parts.join(" | ")
            }
        }
    }

    fn render_paren(&self, subs: &mut Vec<(String, String)>, in_seq: bool) -> String {
        let needs_paren = matches!(self, Node::Par(_)) && in_seq;
        let s = self.render(subs);
        if needs_paren {
            format!("({s})")
        } else {
            s
        }
    }
}

/// A workflow specification: a name plus its control flow.
#[derive(Clone, Debug)]
pub struct WorkflowSpec {
    pub name: String,
    pub body: Node,
}

impl WorkflowSpec {
    /// Specification with the given entry-rule name.
    pub fn new(name: &str, body: Node) -> WorkflowSpec {
        WorkflowSpec {
            name: name.to_owned(),
            body,
        }
    }

    /// The paper's Example 3.1 workflow: five tasks, one sub-workflow,
    /// one concurrent region.
    pub fn example_3_1() -> WorkflowSpec {
        WorkflowSpec::new(
            "workflow",
            Node::Seq(vec![
                Node::task("task1"),
                Node::Par(vec![
                    Node::task("task2"),
                    Node::sub(
                        "subflow",
                        Node::Seq(vec![Node::task("task3"), Node::task("task4")]),
                    ),
                ]),
                Node::task("task5"),
            ]),
        )
    }

    /// Emit the `.td` source: entry rule, sub-workflow rules, and one rule
    /// per task that checks the work item exists and records completion:
    ///
    /// ```text
    /// task_i(W) <- item(W) * ins.done(W, task_i).
    /// ```
    ///
    /// `work_items` become `init item(..)` facts and the goal runs the
    /// workflow on each item concurrently (one workflow instance per item —
    /// the multi-instance execution of §3).
    pub fn compile(&self, work_items: &[String]) -> Scenario {
        let mut src = String::new();
        let _ = writeln!(src, "% workflow `{}` (Example 3.1 shape)", self.name);
        let _ = writeln!(src, "base item/1.");
        let _ = writeln!(src, "base done/2.");
        for w in work_items {
            let _ = writeln!(src, "init item({w}).");
        }
        let mut subs = Vec::new();
        let body = self.body.render(&mut subs);
        let _ = writeln!(src, "{}(W) <- {body}.", self.name);
        for (name, rendered) in subs {
            let _ = writeln!(src, "{name}(W) <- {rendered}.");
        }
        for t in self.body.tasks() {
            let _ = writeln!(src, "{t}(W) <- item(W) * ins.done(W, {t}).");
        }
        let goal = if work_items.is_empty() {
            "?- ().".to_owned()
        } else {
            let parts: Vec<String> = work_items
                .iter()
                .map(|w| format!("{}({w})", self.name))
                .collect();
            format!("?- {}.", parts.join(" | "))
        };
        let _ = writeln!(src, "{goal}");
        Scenario::from_source(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_core::{Fragment, FragmentReport, Pred};
    use td_db::tuple;

    #[test]
    fn example_3_1_compiles_to_the_papers_rules() {
        let spec = WorkflowSpec::example_3_1();
        let scenario = spec.compile(&["w1".to_owned()]);
        assert!(scenario
            .source
            .contains("workflow(W) <- task1(W) * (task2(W) | subflow(W)) * task5(W)."));
        assert!(scenario
            .source
            .contains("subflow(W) <- task3(W) * task4(W)."));
        assert!(scenario
            .source
            .contains("task3(W) <- item(W) * ins.done(W, task3)."));
    }

    #[test]
    fn example_3_1_executes_all_tasks() {
        let spec = WorkflowSpec::example_3_1();
        let scenario = spec.compile(&["w1".to_owned()]);
        let out = scenario.run().unwrap();
        let sol = out.solution().expect("workflow completes");
        let done = Pred::new("done", 2);
        for t in ["task1", "task2", "task3", "task4", "task5"] {
            assert!(
                sol.db.contains(done, &tuple!("w1", t)),
                "{t} should have completed"
            );
        }
    }

    #[test]
    fn task_order_respects_serial_composition() {
        // task5 must come after task1 in the committed delta.
        let spec = WorkflowSpec::example_3_1();
        let scenario = spec.compile(&["w1".to_owned()]);
        let out = scenario.run().unwrap();
        let delta = out.solution().unwrap().delta.clone();
        let pos = |task: &str| {
            delta
                .ops()
                .iter()
                .position(|op| op.to_string().contains(task))
                .unwrap_or(usize::MAX)
        };
        assert!(pos("task1") < pos("task2"));
        assert!(pos("task1") < pos("task3"));
        assert!(pos("task3") < pos("task4"));
        assert!(pos("task2") < pos("task5"));
        assert!(pos("task4") < pos("task5"));
    }

    #[test]
    fn multiple_instances_run_concurrently() {
        let spec = WorkflowSpec::example_3_1();
        let items: Vec<String> = (1..=3).map(|i| format!("w{i}")).collect();
        let scenario = spec.compile(&items);
        let out = scenario.run().unwrap();
        let sol = out.solution().expect("all instances complete");
        assert_eq!(
            sol.db.relation(Pred::new("done", 2)).unwrap().len(),
            15,
            "3 items × 5 tasks"
        );
    }

    #[test]
    fn missing_work_item_fails_the_instance() {
        let spec = WorkflowSpec::example_3_1();
        let mut scenario = spec.compile(&["w1".to_owned()]);
        // Ask for an item that was never inserted.
        scenario.goal = td_parser::parse_goal("workflow(ghost)", &scenario.program)
            .unwrap()
            .goal;
        assert!(!scenario.run().unwrap().is_success());
    }

    #[test]
    fn compiled_workflows_are_nonrecursive_fragment() {
        let spec = WorkflowSpec::example_3_1();
        let scenario = spec.compile(&["w1".to_owned()]);
        let rep = FragmentReport::classify(&scenario.program, &scenario.goal);
        assert_eq!(rep.fragment, Fragment::Nonrecursive);
    }

    #[test]
    fn deep_nesting_compiles() {
        let spec = WorkflowSpec::new(
            "wf",
            Node::Seq(vec![
                Node::task("a"),
                Node::sub(
                    "inner",
                    Node::Par(vec![
                        Node::task("b"),
                        Node::sub("deepest", Node::Seq(vec![Node::task("c"), Node::task("d")])),
                    ]),
                ),
            ]),
        );
        let scenario = spec.compile(&["x".to_owned()]);
        assert!(scenario.run().unwrap().is_success());
    }

    #[test]
    fn tasks_collects_all_names() {
        let spec = WorkflowSpec::example_3_1();
        let tasks = spec.body.tasks();
        assert_eq!(tasks.len(), 5);
        assert!(tasks.contains("task1"));
        assert!(tasks.contains("task5"));
    }
}
