//! Durable workflow runs: §3's long-lived workflow state, persisted.
//!
//! A plain [`Scenario::run`] starts every simulation from the scenario's
//! init facts, but the paper's workflow database — sample status, task
//! claims, agent qualifications — outlives any single run. This module
//! backs a scenario with a [`td_store::Store`] directory:
//!
//! * the **first** run seeds the store with the scenario's schema and init
//!   facts (committed as the genesis WAL record, so even a crash before the
//!   goal leaves a replayable state);
//! * **later** runs crash-recover whatever earlier runs committed and
//!   execute the goal from that state — the scenario's init facts are *not*
//!   re-applied (the store is the source of truth);
//! * each successful run commits its delta through the WAL (fsync) before
//!   reporting success; failed or faulted runs commit nothing.
//!
//! Iterating a scenario against one directory therefore *accumulates*
//! state, the way the lab's iterated protocol accumulates results across
//! days (docs/PERSISTENCE.md).

use crate::scenario::Scenario;
use std::fmt;
use std::path::Path;
use td_db::{Delta, DeltaOp};
use td_engine::{EngineConfig, EngineError, Outcome};
use td_store::{RecoveryInfo, Store, StoreError};

/// Why a durable run failed: inside the engine, or in the layer under it.
#[derive(Debug)]
pub enum DurableError {
    /// The search itself faulted (budget, arity drift, …).
    Engine(EngineError),
    /// Opening, recovering or committing to the store failed.
    Store(StoreError),
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Engine(e) => write!(f, "engine: {e}"),
            DurableError::Store(e) => write!(f, "store: {e}"),
        }
    }
}

impl std::error::Error for DurableError {}

impl From<EngineError> for DurableError {
    fn from(e: EngineError) -> DurableError {
        DurableError::Engine(e)
    }
}

impl From<StoreError> for DurableError {
    fn from(e: StoreError) -> DurableError {
        DurableError::Store(e)
    }
}

/// What one durable run did.
#[derive(Debug)]
pub struct DurableRun {
    /// The engine outcome (success carries the answer, delta and new db).
    pub outcome: Outcome,
    /// How the store opened: fresh, recovered, torn tail cut, stale WAL.
    pub recovery: RecoveryInfo,
    /// Did this run append a WAL record? (Success with a non-empty delta.)
    pub committed: bool,
    /// WAL records since the snapshot, after this run.
    pub wal_records: u64,
    /// Content digest of the durable state after this run.
    pub digest: u128,
}

/// Execute `scenario`'s goal against the durable store at `dir`, creating
/// the store (schema + init facts as the genesis record) on first use and
/// crash-recovering accumulated state on every later one.
pub fn run_durable(
    scenario: &Scenario,
    dir: &Path,
    config: EngineConfig,
) -> Result<DurableRun, DurableError> {
    let mut store = open_for(scenario, dir)?;
    let engine = td_engine::Engine::with_config(scenario.program.clone(), config);
    let outcome = engine.solve(&scenario.goal, store.db())?;
    let mut committed = false;
    if let Outcome::Success(sol) = &outcome {
        if !sol.delta.is_empty() {
            store.commit(&sol.delta)?;
            debug_assert_eq!(store.db().digest(), sol.db.digest());
            committed = true;
        }
    }
    Ok(DurableRun {
        outcome,
        recovery: *store.recovery(),
        committed,
        wal_records: store.wal_records(),
        digest: store.db().digest(),
    })
}

/// Open `dir` with crash recovery, or initialize it from the scenario: a
/// schema-only snapshot, then the init facts committed as the genesis WAL
/// record.
fn open_for(scenario: &Scenario, dir: &Path) -> Result<Store, StoreError> {
    if Store::is_initialized(dir) {
        return Store::open(dir);
    }
    let schema = td_db::Database::with_schema_of(&scenario.program);
    let mut store = Store::init(dir, &schema)?;
    let mut genesis = Delta::new();
    for p in scenario.db.preds() {
        if let Some(rel) = scenario.db.relation(p) {
            for t in rel.to_sorted_vec() {
                genesis.push(DeltaOp::Ins(p, t));
            }
        }
    }
    if !genesis.is_empty() {
        store.commit(&genesis)?;
    }
    Ok(store)
}

impl Scenario {
    /// [`run_durable`] as a method, with the default engine configuration.
    pub fn run_durable(&self, dir: &Path) -> Result<DurableRun, DurableError> {
        run_durable(self, dir, EngineConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;
    use td_store::RecoveryOutcome;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("td-workflow-durable").join(name);
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(dir.parent().unwrap()).unwrap();
        dir
    }

    #[test]
    fn state_accumulates_across_runs_and_init_is_not_reapplied() {
        let dir = temp_dir("accumulate");
        // Run 1: fresh store seeded with t(1), goal inserts t(2).
        let s1 = Scenario::from_source("base t/1. init t(1). ?- ins.t(2).".to_owned());
        let r1 = s1.run_durable(&dir).unwrap();
        assert_eq!(r1.recovery.outcome, RecoveryOutcome::Fresh);
        assert!(r1.committed);
        assert_eq!(r1.wal_records, 2); // genesis + goal

        // Run 2: different init (t(9)) — must be IGNORED, the store is the
        // source of truth; the goal *requires* run 1's t(2), which only a
        // recovered store provides.
        let s2 = Scenario::from_source("base t/1. init t(9). ?- t(2) * ins.t(3).".to_owned());
        let r2 = run_durable(&s2, &dir, EngineConfig::default()).unwrap();
        assert_eq!(r2.recovery.outcome, RecoveryOutcome::Recovered);
        assert_eq!(r2.recovery.replayed, 2);
        assert!(r2.committed);
        let sol = r2.outcome.solution().unwrap();
        assert_eq!(sol.db.total_tuples(), 3); // t(1), t(2), t(3)
        assert!(!sol
            .db
            .contains(td_core::Pred::new("t", 1), &td_db::tuple!(9)));
        assert_eq!(r2.digest, sol.db.digest());

        // A third, read-only run: recovers all three commits, commits none.
        let s3 = Scenario::from_source("base t/1. ?- t(1) * t(2) * t(3).".to_owned());
        let r3 = run_durable(&s3, &dir, EngineConfig::default()).unwrap();
        assert!(r3.outcome.is_success());
        assert!(!r3.committed);
        assert_eq!(r3.wal_records, 3);
        assert_eq!(r3.digest, r2.digest);

        assert!(Store::verify(&dir).is_ok());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_runs_commit_nothing() {
        let dir = temp_dir("failed-run");
        let s = Scenario::from_source("base t/1. init t(1). ?- ins.t(2).".to_owned());
        let r = s.run_durable(&dir).unwrap();
        let before = r.digest;
        // A goal that fails must leave no trace in the WAL.
        let failing = Scenario::from_source("base t/1. ?- t(777) * ins.t(4).".to_owned());
        let r = failing.run_durable(&dir).unwrap();
        assert!(!r.outcome.is_success());
        assert!(!r.committed);
        assert_eq!(r.digest, before);
        assert_eq!(r.wal_records, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn iterated_lab_protocol_accumulates_results() {
        // The §6 iterated protocol, run day after day against one store:
        // every run recovers the previous days' results and adds its own
        // committed transaction on top.
        let dir = temp_dir("labflow");
        let src = crate::labflow::RepeatProtocol::new(2, 3).compile().source;
        let first = Scenario::from_source(src.clone())
            .run_durable(&dir)
            .unwrap();
        assert_eq!(first.recovery.outcome, RecoveryOutcome::Fresh);
        let mut last = first.wal_records;
        for _ in 0..2 {
            let r = Scenario::from_source(src.clone())
                .run_durable(&dir)
                .unwrap();
            assert_eq!(r.recovery.outcome, RecoveryOutcome::Recovered);
            assert!(r.outcome.is_success());
            assert!(r.wal_records >= last);
            last = r.wal_records;
        }
        assert!(Store::verify(&dir).is_ok());
        fs::remove_dir_all(&dir).unwrap();
    }
}
